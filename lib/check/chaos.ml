(* Chaos campaign for the supervised bisad daemon.

   One supervised server (forked supervisor, forked server children, a
   shared crash-safe spool), a fleet of concurrent retrying clients, and
   an injector throwing real faults at all of it:

     - SIGKILL at random delays (the supervisor must respawn, the spool
       must warm the replacement)
     - SIGSTOP (existence is not liveness: the health pings' kernel
       timeouts must see through a stopped-but-present process and the
       supervisor must kill and replace it)
     - truncated frames, garbage length prefixes, and a slow-loris
       connection trickling a partial frame (connection hygiene must
       contain all three without disturbing real clients)
     - spool corruption between restarts (reload must skip the damaged
       entry loudly, and the next request for it must recompute and
       re-spool — the spool self-heals)

   The invariant at the end of all of it: every client converged, every
   response byte-identical to what the engine serves a one-shot caller —
   the same [Engine.handle] the golden daemon smoke test pins against
   the real CLI — within a bounded time and with bounded server RSS.
   Crash-only serving means none of the injections above may cost more
   than a retry. *)

module Diag = Bisa_base.Diag
module Rng = Bisa_base.Rng
module Proto = Bisa_proto.Proto
module Engine = Bisa_serve.Engine
module Server = Bisa_serve.Server
module Client = Bisa_serve.Client
module Supervise = Bisa_serve.Supervise

type report = {
  requests : int;  (** client requests that completed and matched *)
  clients : int;
  crashes : int;  (** server children that died, per the supervisor *)
  restarts : int;
  health_kills : int;  (** restarts forced by failed health pings *)
  retries : int;  (** client-side retry events across the fleet *)
  adversaries : int;  (** malformed-frame / slow-loris legs run *)
  corruptions : int;  (** spool files damaged between restarts *)
  rss_kb : int;  (** final server child's peak RSS *)
}

(* --- workload mix ------------------------------------------------------- *)

(* Small distinct programs (the soak generator's shape): enough spread
   that the spool holds several entries worth corrupting, small enough
   that a request is milliseconds. *)
let chaos_source i =
  Printf.sprintf
    {|
int acc[8];
int main() {
  int i;
  int s = %d;
  for (i = 0; i < 300; i = i + 1) {
    acc[i & 7] = acc[i & 7] + i * %d;
    s = s + acc[i & 7];
    if (s > 40000) { s = s - 39999; }
  }
  print_int(s);
  return s & 255;
}
|}
    (i + 3)
    ((i * 5) + 7)

let mk_requests programs =
  List.concat_map
    (fun i ->
      let src = Proto.Source { src = chaos_source i; libs = [] } in
      List.map
        (fun isa ->
          Proto.Simulate
            {
              src;
              isa;
              mode = Proto.Timing;
              exec = Bisa_sim.Compile.Interp;
              cfg = Proto.default_sim_cfg;
              show_output = true;
            })
        [ Proto.Conv; Proto.Block ])
    (List.init programs Fun.id)

(* --- scratch and small file helpers ------------------------------------- *)

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | _ -> ( try Sys.remove path with Sys_error _ -> ())
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

(* Multi-process event log: O_APPEND keeps whole small lines intact. *)
let append_line path line =
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_APPEND; Unix.O_CREAT ] 0o644 in
  let s = line ^ "\n" in
  ignore (Unix.write_substring fd s 0 (String.length s));
  Unix.close fd

(* --- the supervised server ---------------------------------------------- *)

(* The supervisor runs as its own forked process, its server children as
   forked grandchildren running [Server.serve] in-process on a
   sequential engine (chaos runs single-domain; see the bisafuzz
   chaos alias).  Aggressive intervals: detection and restart must fit a
   campaign measured in seconds, not minutes. *)
let start_supervisor ~socket ~spool ~pid_file ~events ~report_file =
  match Unix.fork () with
  | 0 ->
    let log d = append_line events (Diag.render d) in
    let spawn () =
      match Unix.fork () with
      | 0 ->
        (try
           let engine =
             Engine.create ~spool_dir:spool ~result_cap:8192 ~log:(fun d ->
                 append_line events (Diag.render d))
               ()
           in
           Server.serve ~max_inflight:64 ~idle_timeout:2.0 ~engine ~path:socket ();
           Unix._exit 0
         with _ -> Unix._exit 1)
      | pid -> pid
    in
    let cfg =
      {
        (Supervise.default ~socket) with
        health_interval = 0.25;
        health_timeout = 0.5;
        health_strikes = 2;
        grace = 1.0;
        backoff_base = 0.05;
        backoff_cap = 0.25;
        stable_secs = 5.0;
        pid_file = Some pid_file;
        log;
      }
    in
    let r = Supervise.run ~install_signals:true cfg ~spawn in
    Bisa_base.Atomic_file.write_string report_file
      (Printf.sprintf "%d %d %d %b" r.Supervise.restarts r.Supervise.crashes
         r.Supervise.health_kills r.Supervise.graceful);
    Unix._exit (if r.Supervise.graceful then 0 else 2)
  | pid -> pid

(* --- clients ------------------------------------------------------------ *)

(* Each client is a forked process driving its deterministic slice of
   the request mix through [Client.call_retry], pacing with small
   seeded sleeps so the fleet stays in flight across the injections.
   Its verdict (and retry count) comes back through a scratch file;
   exit codes distinguish mismatch from crash. *)
let start_client ~socket ~dir ~seed ~cid ~per_client ~reqs ~expected =
  match Unix.fork () with
  | 0 ->
    let rng = Rng.derive seed (1000 + cid) in
    let retries = ref 0 in
    let out = Filename.concat dir (Printf.sprintf "client%d" cid) in
    let fail msg =
      Bisa_base.Atomic_file.write_string out ("fail " ^ msg);
      Unix._exit 1
    in
    (try
       for k = 0 to per_client - 1 do
         let idx = (cid + (k * 7)) mod Array.length reqs in
         (match
            Client.call_retry ~attempts:60 ~base:0.02 ~cap:0.25
              ~seed:(Rng.int rng 1_000_000)
              ~on_retry:(fun ~attempt:_ ~delay:_ _ -> incr retries)
              socket reqs.(idx)
          with
         | Proto.Sim { stdout; notes; _ } ->
           let want_out, want_notes = expected.(idx) in
           if stdout <> want_out || notes <> want_notes then
             fail
               (Printf.sprintf
                  "request %d (mix %d) diverged from the engine's bytes:\n\
                   --- want ---\n%s--- got ---\n%s" k idx want_out stdout)
         | Proto.Err ds ->
           fail
             (Printf.sprintf "request %d (mix %d) failed: %s" k idx
                (String.concat "; " (List.map Diag.render ds)))
         | _ -> fail (Printf.sprintf "request %d (mix %d): unexpected response" k idx));
         (* Pacing: keep the fleet in flight across the injection plan
            rather than draining the mix in one burst. *)
         Unix.sleepf (Rng.float rng 0.06)
       done;
       Bisa_base.Atomic_file.write_string out (Printf.sprintf "ok %d" !retries);
       Unix._exit 0
     with e -> fail ("client raised " ^ Printexc.to_string e))
  | pid -> pid

(* --- injections --------------------------------------------------------- *)

type action = Kill | Stop | Trunc | Garbage | Loris | Corrupt

let child_pid pid_file =
  match int_of_string (String.trim (read_file pid_file)) with
  | pid when pid > 1 -> Some pid
  | _ -> None
  | exception _ -> None

let inject_signal pid_file signal =
  match child_pid pid_file with
  | None -> false
  | Some pid -> (
    match Unix.kill pid signal with
    | () -> true
    | exception Unix.Unix_error _ -> false)

(* Send a prefix of a valid frame and vanish: the server must hold the
   partial bytes without leaking them into real traffic, and the close
   must cost it nothing. *)
let inject_trunc socket =
  match Client.connect socket with
  | exception _ -> false
  | fd ->
    let frame = Proto.frame (Proto.encode_request Proto.Ping) in
    let n = max 2 (String.length frame / 2) in
    (try ignore (Unix.write_substring fd frame 0 n) with _ -> ());
    Client.close fd;
    true

(* A slow loris: a half-written frame stalled on an open connection.
   The server must park it without blocking real traffic and evict it
   once it crosses the idle timeout; we hold the fd until campaign end
   (or until a kill severs it) and just close whatever is left. *)
let inject_loris socket held =
  match Client.connect socket with
  | exception _ -> false
  | fd ->
    let frame = Proto.frame (Proto.encode_request Proto.Stats) in
    (try ignore (Unix.write_substring fd frame 0 (max 2 (String.length frame - 3)))
     with _ -> ());
    held := fd :: !held;
    true

(* An impossible length prefix: the server answers with the framing
   diagnostic and closes only that connection. *)
let inject_garbage socket =
  match Client.connect socket with
  | exception _ -> false
  | fd ->
    (try ignore (Unix.write_substring fd "\xff\xff\xff\xffjunk" 0 8) with _ -> ());
    Client.close fd;
    true

(* Damage one finished spool entry in place — truncate it or replace it
   with garbage — so the next restart exercises the skip-and-recompute
   path. *)
let inject_corrupt rng spool =
  match Sys.readdir spool with
  | exception Sys_error _ -> false
  | files -> (
    let resps =
      Array.to_list files |> List.filter (fun f -> Filename.check_suffix f ".resp")
    in
    match resps with
    | [] -> false
    | l ->
      let path = Filename.concat spool (List.nth l (Rng.int rng (List.length l))) in
      (try
         let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o644 in
         if Rng.bool rng then
           ignore (Unix.write_substring fd "not a spooled result" 0 20);
         Unix.close fd;
         true
       with Unix.Unix_error _ | Sys_error _ -> false))

(* --- the campaign ------------------------------------------------------- *)

let fresh_scratch () =
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "bisa-chaos-%d" (Unix.getpid ()))
  in
  rm_rf d;
  Unix.mkdir d 0o755;
  d

let campaign ?(seed = 42) ?(requests = 1000) ?dir () =
  let quick = requests <= 500 in
  let clients = if quick then 3 else 8 in
  let per_client = max 10 (requests / clients) in
  let programs = if quick then 4 else 6 in
  let time_budget = if quick then 25.0 else 120.0 in
  (* The injection plan: at least one SIGKILL and one spool corruption
     always; the full profile adds more kills, a SIGSTOP (liveness, not
     existence), and the malformed-frame adversaries. *)
  let plan =
    (* Every Corrupt precedes a Kill: damage only matters if a restart
       reloads the spool over it. *)
    if quick then [ Trunc; Corrupt; Kill ]
    else
      [
        Trunc; Kill; Garbage; Corrupt; Kill; Loris; Stop; Corrupt; Kill; Kill;
      ]
  in
  let scratch, cleanup =
    match dir with
    | Some d -> (d, fun () -> ())
    | None ->
      let d = fresh_scratch () in
      (d, fun () -> rm_rf d)
  in
  let socket = Filename.concat scratch "sock" in
  let spool = Filename.concat scratch "spool" in
  let pid_file = Filename.concat scratch "pid" in
  let events = Filename.concat scratch "events.log" in
  let report_file = Filename.concat scratch "supervisor.report" in
  Unix.mkdir spool 0o755;
  let rng = Rng.create seed in
  let reqs = Array.of_list (mk_requests programs) in
  (* The golden bytes, from the same engine code path a fresh daemon
     would run — the daemon smoke test pins that path against the real
     one-shot CLI, so matching the engine here is matching the CLI. *)
  let golden_engine = Engine.create () in
  let expected =
    Array.map
      (fun req ->
        match Engine.handle golden_engine req with
        | Proto.Sim { stdout; notes; _ } -> (stdout, notes)
        | _ -> failwith "chaos: golden engine refused a mix request")
      reqs
  in
  let sup = start_supervisor ~socket ~spool ~pid_file ~events ~report_file in
  let kill_everything () =
    (match child_pid pid_file with
    | Some pid -> ( try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ())
    | None -> ());
    (try Unix.kill sup Sys.sigkill with Unix.Unix_error _ -> ());
    try ignore (Unix.waitpid [] sup) with Unix.Unix_error _ -> ()
  in
  match
    (* Wait until the first child serves before unleashing the fleet. *)
    let rec warm n =
      if Client.healthy ~timeout:0.5 socket then Ok ()
      else if n = 0 then Error "chaos: supervised server never became healthy"
      else begin
        Unix.sleepf 0.1;
        warm (n - 1)
      end
    in
    warm 100
  with
  | Error e ->
    kill_everything ();
    cleanup ();
    Error e
  | Ok () -> (
    let client_pids =
      List.init clients (fun cid ->
          start_client ~socket ~dir:scratch ~seed ~cid ~per_client ~reqs ~expected)
    in
    (* Drive the injection plan while the fleet runs: one action every
       0.15-0.5s, each logged, each tolerated mid-restart. *)
    let deadline = Unix.gettimeofday () +. time_budget in
    let adversaries = ref 0 in
    let corruptions = ref 0 in
    let kills_sent = ref 0 in
    let last_victim = ref None in
    let held_fds = ref [] in
    let pending = ref plan in
    let next_action = ref (Unix.gettimeofday () +. 0.2) in
    let alive = ref client_pids in
    let overtime = ref false in
    (* The loop owes the plan as much as the clients: injections keep
       firing until exhausted even if the fleet finishes early, and the
       fleet keeps being reaped until empty even after the last fault. *)
    while (!alive <> [] || !pending <> []) && not !overtime do
      let now = Unix.gettimeofday () in
      if now > deadline then overtime := true
      else begin
        (match !pending with
        | a :: rest when now >= !next_action ->
          let target = child_pid pid_file in
          (* A kill-type action waits for a fresh victim: signalling the
             same (possibly stopped, already-doomed) child twice would
             send two signals for one crash. *)
          let postpone =
            match a with
            | Kill | Stop -> target = None || target = !last_victim
            | Trunc | Garbage | Loris | Corrupt -> false
          in
          if postpone then next_action := now +. 0.1
          else begin
          pending := rest;
          next_action := now +. 0.1 +. Rng.float rng 0.25;
          let did =
            match a with
            | Kill ->
              let ok = inject_signal pid_file Sys.sigkill in
              if ok then begin
                incr kills_sent;
                last_victim := target
              end;
              ok
            | Stop ->
              let ok = inject_signal pid_file Sys.sigstop in
              if ok then begin
                incr kills_sent;
                last_victim := target
              end;
              ok
            | Trunc ->
              let ok = inject_trunc socket in
              if ok then incr adversaries;
              ok
            | Garbage ->
              let ok = inject_garbage socket in
              if ok then incr adversaries;
              ok
            | Loris ->
              let ok = inject_loris socket held_fds in
              if ok then incr adversaries;
              ok
            | Corrupt ->
              let ok = inject_corrupt rng spool in
              if ok then incr corruptions;
              ok
          in
          append_line events
            (Printf.sprintf "[inject] %s%s"
               (match a with
               | Kill -> "SIGKILL"
               | Stop -> "SIGSTOP"
               | Trunc -> "truncated frame"
               | Garbage -> "garbage length prefix"
               | Loris -> "slow-loris stall"
               | Corrupt -> "spool corruption")
               (if did then "" else " (no target; skipped)"))
          end
        | _ -> ());
        alive :=
          List.filter
            (fun pid ->
              match Unix.waitpid [ Unix.WNOHANG ] pid with
              | 0, _ -> true
              | _ -> false
              | exception Unix.Unix_error _ -> false)
            !alive;
        if !alive <> [] || !pending <> [] then Unix.sleepf 0.02
      end
    done;
    List.iter
      (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
      !held_fds;
    if !overtime then begin
      List.iter
        (fun pid -> try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ())
        !alive;
      List.iter
        (fun pid -> try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ())
        !alive;
      kill_everything ();
      cleanup ();
      Error
        (Printf.sprintf
           "chaos: clients did not converge within the %.0fs budget (%d still \
            running)"
           time_budget (List.length !alive))
    end
    else begin
      (* Collect client verdicts. *)
      let verdicts =
        List.init clients (fun cid ->
            match read_file (Filename.concat scratch (Printf.sprintf "client%d" cid)) with
            | s -> s
            | exception _ -> "fail client left no verdict")
      in
      let failures = List.filter (fun v -> String.length v < 2 || String.sub v 0 2 <> "ok") verdicts in
      let retries =
        List.fold_left
          (fun acc v ->
            match String.split_on_char ' ' v with
            | [ "ok"; n ] -> acc + int_of_string n
            | _ -> acc)
          0 verdicts
      in
      (* Final server-side checks over the survivor, then a graceful
         shutdown that also ends supervision. *)
      let final =
        match Client.call_retry ~attempts:40 ~base:0.02 ~cap:0.25 socket Proto.Stats with
        | Proto.Stats_r s -> Some s
        | _ -> None
        | exception _ -> None
      in
      (match Client.call_retry ~attempts:40 ~base:0.02 ~cap:0.25 socket Proto.Shutdown with
      | _ -> ()
      | exception _ -> ());
      let sup_status =
        match Unix.waitpid [] sup with
        | _, st -> Some st
        | exception Unix.Unix_error _ -> None
      in
      let sup_report =
        match String.split_on_char ' ' (String.trim (read_file report_file)) with
        | [ r; c; h; g ] ->
          Some (int_of_string r, int_of_string c, int_of_string h, bool_of_string g)
        | _ | (exception _) -> None
      in
      let ev = match read_file events with s -> s | exception _ -> "" in
      let contains hay needle =
        let nh = String.length hay and nn = String.length needle in
        let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
        nn > 0 && go 0
      in
      let result =
        if failures <> [] then
          Error ("chaos: " ^ String.concat "\nchaos: " failures)
        else
          match sup_report with
          | None -> Error "chaos: supervisor left no report"
          | Some (restarts, crashes, health_kills, graceful) ->
            if not graceful then
              Error "chaos: supervision did not end gracefully"
            else if sup_status <> Some (Unix.WEXITED 0) then
              Error "chaos: supervisor exited abnormally"
            else if crashes < !kills_sent then
              Error
                (Printf.sprintf
                   "chaos: sent %d kill signals but the supervisor saw only %d \
                    crashes"
                   !kills_sent crashes)
            else if !corruptions > 0 && not (contains ev "spool: skipped") then
              Error
                "chaos: spool was corrupted but no restart logged a skipped entry"
            else begin
              let rss_kb = match final with Some s -> s.Proto.rss_kb | None -> 0 in
              if rss_kb > 300_000 then
                Error
                  (Printf.sprintf "chaos: final server RSS %d KB exceeds the bound"
                     rss_kb)
              else
                Ok
                  {
                    requests = clients * per_client;
                    clients;
                    crashes;
                    restarts;
                    health_kills;
                    retries;
                    adversaries = !adversaries;
                    corruptions = !corruptions;
                    rss_kb;
                  }
            end
      in
      (match result with Ok _ -> cleanup () | Error _ -> kill_everything ());
      result
    end)
