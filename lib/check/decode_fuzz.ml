(* Binary-image mutation fuzzer for the decoders.

   Starting from a valid .cbin/.bbin image, applies random bit flips, byte
   rewrites, truncations and junk extensions, then requires the decoder to
   either produce a program or raise [Encode.Malformed] carrying a byte
   offset inside the image — never Stack_overflow, Out_of_memory, an
   uncaught Invalid_argument from a wild Array.init, or a hang. *)

module Encode = Bisa_isa.Encode
module Diag = Bisa_base.Diag
module Rng = Bisa_base.Rng

type format = Conv | Block

type report = {
  mutants : int;
  decoded : int;  (** mutants that still decoded to some program *)
  rejected : int;  (** mutants rejected with a well-formed Malformed *)
}

let mutate rng img =
  let len = String.length img in
  match Rng.int rng 4 with
  | 0 when len > 0 ->
    let b = Bytes.of_string img in
    let i = Rng.int rng len in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl Rng.int rng 8)));
    Bytes.to_string b
  | 1 when len > 0 ->
    let b = Bytes.of_string img in
    Bytes.set b (Rng.int rng len) (Char.chr (Rng.int rng 256));
    Bytes.to_string b
  | 2 when len > 0 -> String.sub img 0 (Rng.int rng len)
  | _ -> img ^ String.init (1 + Rng.int rng 8) (fun _ -> Char.chr (Rng.int rng 256))

let decode_of = function
  | Conv -> fun s -> ignore (Encode.conv_of_bytes s : Bisa_isa.Conv_prog.t)
  | Block -> fun s -> ignore (Encode.block_of_bytes s : Bisa_isa.Block_prog.t)

(* One mutant: Ok true = decoded, Ok false = cleanly rejected. *)
let check_one fmt img =
  match decode_of fmt img with
  | () -> Ok true
  | exception Encode.Malformed d -> begin
    match d.Diag.loc with
    | Diag.Byte { offset; section }
      when offset >= 0 && offset <= String.length img && section <> "" ->
      Ok false
    | _ ->
      Error
        (Printf.sprintf "Malformed without a usable byte offset: %s" (Diag.render d))
  end
  | exception exn ->
    Error (Printf.sprintf "decoder raised %s" (Printexc.to_string exn))

(* --- The verified-loading trichotomy ------------------------------------- *)

module Verify = Bisa_verify.Verify

type trichotomy_report = {
  t_mutants : int;
  t_rejected_decode : int;
  t_rejected_verify : int;
  t_completed : int;  (** simulated to an architectural halt *)
  t_trapped : int;  (** of completed: halted via a machine trap *)
  t_budgeted : int;  (** stopped by the op budget (Runaway) *)
}

type tri_outcome = Odecode | Overify | Ocompleted of bool | Obudgeted

let malformed_ok img (d : Diag.t) =
  match d.Diag.loc with
  | Diag.Byte { offset; section }
    when offset >= 0 && offset <= String.length img && section <> "" ->
    Ok Odecode
  | _ ->
    Error (Printf.sprintf "Malformed without a usable byte offset: %s" (Diag.render d))

(* A rejection only counts if every diagnostic is structured: a stable
   rule id up front and error severity. *)
let verify_rejection_ok ds =
  match List.find_opt (fun d -> Verify.rule_of d = "") ds with
  | Some d ->
    Error (Printf.sprintf "verifier diagnostic without a rule id: %s" (Diag.render d))
  | None -> Ok Overify

(* Functional execution then a timing-model run: the timing front end is
   the only caller that fetches speculatively (variant-group fetches), so
   it must also complete without Illegal_fetch on any verified program. *)
let sim_outcomes ~functional ~timing ~trapped what =
  match functional () with
  | exception exn ->
    Error (Printf.sprintf "%s executor raised %s" what (Printexc.to_string exn))
  | `Budgeted -> Ok Obudgeted
  | `Halted -> begin
    match timing () with
    | () -> Ok (Ocompleted (trapped ()))
    | exception exn ->
      Error (Printf.sprintf "%s timing pipeline raised %s" what (Printexc.to_string exn))
  end

let timing_cfg budget =
  { Bisa_timing.Config.default with Bisa_timing.Config.op_budget = budget }

let check_tri fmt ~budget img =
  match fmt with
  | Conv -> begin
    match Encode.conv_of_bytes img with
    | exception Encode.Malformed d -> malformed_ok img d
    | exception exn ->
      Error (Printf.sprintf "decoder raised %s" (Printexc.to_string exn))
    | p -> begin
      match Verify.conv_prog p with
      | exception exn ->
        Error (Printf.sprintf "verifier raised %s" (Printexc.to_string exn))
      | Error ds -> verify_rejection_ok ds
      | Ok w ->
        let module E = Bisa_sim.Conv_exec in
        let t = E.create p in
        E.set_budget t budget;
        let rec go () = match E.step t with Some _ -> go () | None -> () in
        sim_outcomes
          ~functional:(fun () ->
            match go () with () -> `Halted | exception E.Runaway _ -> `Budgeted)
          ~timing:(fun () ->
            match
              Bisa_timing.Conv_pipeline.run
                ~tables:(Bisa_timing.Predecode.of_conv w)
                (timing_cfg budget) p
            with
            | (_ : Bisa_timing.Metrics.t) -> ()
            | exception E.Runaway _ -> ())
          ~trapped:(fun () -> E.machine_trap t <> None)
          "conv"
    end
  end
  | Block -> begin
    match Encode.block_of_bytes img with
    | exception Encode.Malformed d -> malformed_ok img d
    | exception exn ->
      Error (Printf.sprintf "decoder raised %s" (Printexc.to_string exn))
    | p -> begin
      match Verify.block_prog p with
      | exception exn ->
        Error (Printf.sprintf "verifier raised %s" (Printexc.to_string exn))
      | Error ds -> verify_rejection_ok ds
      | Ok w ->
        let module E = Bisa_sim.Block_exec in
        let t = E.create p in
        E.set_budget t budget;
        let rec go () = match E.step t with Some _ -> go () | None -> () in
        sim_outcomes
          ~functional:(fun () ->
            match go () with () -> `Halted | exception E.Runaway _ -> `Budgeted)
          ~timing:(fun () ->
            match
              Bisa_timing.Block_pipeline.run
                ~tables:(Bisa_timing.Predecode.of_block w)
                (timing_cfg budget) p
            with
            | (_ : Bisa_timing.Metrics.t) -> ()
            | exception E.Runaway _ -> ())
          ~trapped:(fun () -> E.machine_trap t <> None)
          "block"
    end
  end

let trichotomy ?(pool = Bisa_base.Pool.sequential) ?(budget = 200_000) fmt ~seed
    ~count img =
  match check_tri fmt ~budget img with
  | Error e -> Error (Printf.sprintf "pristine image: %s" e)
  | Ok (Odecode | Overify) -> Error "pristine image did not verify"
  | Ok _ ->
    let indices = List.init count Fun.id in
    let outcomes =
      Bisa_base.Pool.map_list pool
        (fun i -> (i, check_tri fmt ~budget (mutate (Rng.derive seed i) img)))
        indices
    in
    let rd = ref 0 and rv = ref 0 and comp = ref 0 and trap = ref 0 and bud = ref 0 in
    let rec tally = function
      | [] ->
        Ok
          {
            t_mutants = count;
            t_rejected_decode = !rd;
            t_rejected_verify = !rv;
            t_completed = !comp;
            t_trapped = !trap;
            t_budgeted = !bud;
          }
      | (_, Ok Odecode) :: rest ->
        incr rd;
        tally rest
      | (_, Ok Overify) :: rest ->
        incr rv;
        tally rest
      | (_, Ok (Ocompleted t)) :: rest ->
        incr comp;
        if t then incr trap;
        tally rest
      | (_, Ok Obudgeted) :: rest ->
        incr bud;
        tally rest
      | (i, Error e) :: _ -> Error (Printf.sprintf "mutant %d (seed %d): %s" i seed e)
    in
    tally outcomes

let run ?(pool = Bisa_base.Pool.sequential) fmt ~seed ~count img =
  (* The pristine image must decode — otherwise the campaign is vacuous. *)
  match decode_of fmt img with
  | exception exn ->
    Error (Printf.sprintf "pristine image failed to decode: %s" (Printexc.to_string exn))
  | () ->
    (* Mutant [i] is seeded from [Rng.derive seed i] — a pure function of
       the work item — so the campaign shards across the pool and still
       produces the same mutants, counts, and first failure at every
       worker count. *)
    let indices = List.init count Fun.id in
    let outcomes =
      Bisa_base.Pool.map_list pool
        (fun i -> (i, check_one fmt (mutate (Rng.derive seed i) img)))
        indices
    in
    let decoded = ref 0 and rejected = ref 0 in
    let rec tally = function
      | [] -> Ok { mutants = count; decoded = !decoded; rejected = !rejected }
      | (_, Ok true) :: rest ->
        incr decoded;
        tally rest
      | (_, Ok false) :: rest ->
        incr rejected;
        tally rest
      | (i, Error e) :: _ -> Error (Printf.sprintf "mutant %d (seed %d): %s" i seed e)
    in
    tally outcomes
