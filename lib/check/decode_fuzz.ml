(* Binary-image mutation fuzzer for the decoders.

   Starting from a valid .cbin/.bbin image, applies random bit flips, byte
   rewrites, truncations and junk extensions, then requires the decoder to
   either produce a program or raise [Encode.Malformed] carrying a byte
   offset inside the image — never Stack_overflow, Out_of_memory, an
   uncaught Invalid_argument from a wild Array.init, or a hang. *)

module Encode = Bisa_isa.Encode
module Diag = Bisa_base.Diag
module Rng = Bisa_base.Rng

type format = Conv | Block

type report = {
  mutants : int;
  decoded : int;  (** mutants that still decoded to some program *)
  rejected : int;  (** mutants rejected with a well-formed Malformed *)
}

let mutate rng img =
  let len = String.length img in
  match Rng.int rng 4 with
  | 0 when len > 0 ->
    let b = Bytes.of_string img in
    let i = Rng.int rng len in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl Rng.int rng 8)));
    Bytes.to_string b
  | 1 when len > 0 ->
    let b = Bytes.of_string img in
    Bytes.set b (Rng.int rng len) (Char.chr (Rng.int rng 256));
    Bytes.to_string b
  | 2 when len > 0 -> String.sub img 0 (Rng.int rng len)
  | _ -> img ^ String.init (1 + Rng.int rng 8) (fun _ -> Char.chr (Rng.int rng 256))

let decode_of = function
  | Conv -> fun s -> ignore (Encode.conv_of_bytes s : Bisa_isa.Conv_prog.t)
  | Block -> fun s -> ignore (Encode.block_of_bytes s : Bisa_isa.Block_prog.t)

(* One mutant: Ok true = decoded, Ok false = cleanly rejected. *)
let check_one fmt img =
  match decode_of fmt img with
  | () -> Ok true
  | exception Encode.Malformed d -> begin
    match d.Diag.loc with
    | Diag.Byte { offset; section }
      when offset >= 0 && offset <= String.length img && section <> "" ->
      Ok false
    | _ ->
      Error
        (Printf.sprintf "Malformed without a usable byte offset: %s" (Diag.render d))
  end
  | exception exn ->
    Error (Printf.sprintf "decoder raised %s" (Printexc.to_string exn))

let run ?(pool = Bisa_base.Pool.sequential) fmt ~seed ~count img =
  (* The pristine image must decode — otherwise the campaign is vacuous. *)
  match decode_of fmt img with
  | exception exn ->
    Error (Printf.sprintf "pristine image failed to decode: %s" (Printexc.to_string exn))
  | () ->
    (* Mutant [i] is seeded from [Rng.derive seed i] — a pure function of
       the work item — so the campaign shards across the pool and still
       produces the same mutants, counts, and first failure at every
       worker count. *)
    let indices = List.init count Fun.id in
    let outcomes =
      Bisa_base.Pool.map_list pool
        (fun i -> (i, check_one fmt (mutate (Rng.derive seed i) img)))
        indices
    in
    let decoded = ref 0 and rejected = ref 0 in
    let rec tally = function
      | [] -> Ok { mutants = count; decoded = !decoded; rejected = !rejected }
      | (_, Ok true) :: rest ->
        incr decoded;
        tally rest
      | (_, Ok false) :: rest ->
        incr rejected;
        tally rest
      | (i, Error e) :: _ -> Error (Printf.sprintf "mutant %d (seed %d): %s" i seed e)
    in
    tally outcomes
