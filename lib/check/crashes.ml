(* Crash-injection campaigns for the resumable experiment machinery.

   One golden pass runs a small grid (2 benchmarks x 2 configs x both
   pipelines) straight through the pipelines.  Every trial then runs the
   same grid under a Campaign directory, kills it — either by making the
   n-th Atomic_file write raise (in-process, covering the pre-rename
   window) or by forking and SIGKILLing after a randomized delay — and
   re-runs with the same directory.  The resumed report must be
   byte-identical to the golden one: finished cells must be reused,
   in-flight cells must restart from their last snapshot, and no torn
   file may ever surface. *)

module Campaign = Bisa_experiments.Campaign
module Config = Bisa_timing.Config
module Metrics = Bisa_timing.Metrics

type report = {
  cells : int;
  hook_crashes : int;
  kill_trials : int;
  kills_mid_flight : int;
}

(* Small enough to keep the whole campaign sub-second, big enough that a
   cell crosses several checkpoint intervals. *)
let checkpoint_every = 2_000

let src_alpha =
  {|
int acc[8];
int mix(int a, int b) {
  int r = a * 131 + b;
  if (r > 9000) { r = r % 8191; }
  return r ^ (b >> 1);
}
int main() {
  int i;
  int s = 1;
  for (i = 0; i < 900; i = i + 1) {
    acc[i & 7] = mix(i, s);
    s = s + acc[i & 7];
    if (s > 60000) { s = s - 59999; }
  }
  print_int(s);
  return s & 255;
}
|}

let src_beta =
  {|
int tbl[16];
float fsum;
int step(int x) {
  int y = x + (x >> 2);
  if (y & 1) { y = y * 3 + 1; } else { y = y / 2; }
  return y;
}
int main() {
  int i;
  int v = 7;
  for (i = 0; i < 700; i = i + 1) {
    v = step(v) & 4095;
    tbl[v & 15] = tbl[v & 15] + 1;
    fsum = fsum + itof(v & 31) * 0.25;
  }
  print_int(tbl[3]);
  print_float(fsum);
  return v & 255;
}
|}

type cell = { name : string; run : Campaign.t option -> Metrics.t }

let mk_cells () =
  (* Artifacts are prepared once per program; compiler output is
     verifier-clean, so [prepare] both discharges and re-checks that. *)
  let progs =
    List.map
      (fun (name, src) ->
        let c = Bisa_compiler.Compiler.compile src in
        ( name,
          Bisa_timing.Pipeline.Conv.prepare c.conv,
          Bisa_timing.Pipeline.Block.prepare c.block ))
      [ ("alpha", src_alpha); ("beta", src_beta) ]
  in
  let cfgs =
    [
      ("real", Config.default);
      ("perfect", Config.with_predictor Config.Perfect Config.default);
    ]
  in
  List.concat_map
    (fun (bname, conv_art, block_art) ->
      List.concat_map
        (fun (cname, cfg) ->
          let bench = bname ^ "." ^ cname in
          [
            {
              name = bench ^ "/conv";
              run =
                (fun camp ->
                  match camp with
                  | Some t ->
                    Campaign.run_cell t
                      (module Bisa_timing.Pipeline.Conv)
                      ~bench cfg conv_art
                  | None ->
                    fst (Bisa_timing.Pipeline.Conv.run_artifact cfg conv_art));
            };
            {
              name = bench ^ "/block";
              run =
                (fun camp ->
                  match camp with
                  | Some t ->
                    Campaign.run_cell t
                      (module Bisa_timing.Pipeline.Block)
                      ~bench cfg block_art
                  | None ->
                    fst (Bisa_timing.Pipeline.Block.run_artifact cfg block_art));
            };
          ])
        cfgs)
    progs

let render cells camp =
  String.concat ""
    (List.map (fun c -> Metrics.summary ~name:c.name (c.run camp) ^ "\n") cells)

let open_camp d =
  Campaign.open_ ~dir:d ~checkpoint_every ~scale:None ~paper_caches:false ()

(* --- scratch directory management ------------------------------------- *)

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | _ -> ( try Sys.remove path with Sys_error _ -> ())
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let fresh_scratch () =
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "bisa-crash-%d" (Unix.getpid ()))
  in
  rm_rf d;
  Unix.mkdir d 0o755;
  d

(* --- in-process crashes at the n-th atomic write ----------------------- *)

exception Crashed

let with_crash_at n f =
  let count = ref 0 in
  Bisa_base.Atomic_file.crash_after_write_hook :=
    Some
      (fun () ->
        incr count;
        if !count = n then raise Crashed);
  Fun.protect
    ~finally:(fun () -> Bisa_base.Atomic_file.crash_after_write_hook := None)
    f

(* Run one trial that dies at the [n]-th atomic write (campaign meta,
   checkpoint snapshot, or finished-cell manifest — whichever comes
   n-th), then resumes.  Returns whether the crash actually fired. *)
let hook_trial ~dir cells golden n =
  let d = Filename.concat dir (Printf.sprintf "hook%d" n) in
  let fired =
    match with_crash_at n (fun () -> render cells (Some (open_camp d))) with
    | (_ : string) -> false
    | exception Crashed -> true
  in
  let resumed = render cells (Some (open_camp d)) in
  if resumed <> golden then
    Error
      (Printf.sprintf
         "resume after in-process crash at atomic write %d diverged from the \
          uninterrupted run:\n--- golden ---\n%s--- resumed ---\n%s"
         n golden resumed)
  else Ok fired

(* --- forked runs SIGKILLed at randomized delays ------------------------ *)

let kill_trial ~dir cells golden i delay =
  let d = Filename.concat dir (Printf.sprintf "kill%d" i) in
  match Unix.fork () with
  | 0 ->
    (* Child: run the whole grid into the campaign directory.  [_exit]
       keeps the parent's buffered output from being flushed twice. *)
    (try
       ignore (render cells (Some (open_camp d)) : string);
       Unix._exit 0
     with _ -> Unix._exit 1)
  | pid -> begin
    Unix.sleepf delay;
    (try Unix.kill pid Sys.sigkill with Unix.Unix_error (Unix.ESRCH, _, _) -> ());
    let _, status = Unix.waitpid [] pid in
    match status with
    | Unix.WEXITED 1 ->
      Error (Printf.sprintf "kill trial %d: forked grid runner itself failed" i)
    | st ->
      let landed = match st with Unix.WSIGNALED s -> s = Sys.sigkill | _ -> false in
      let resumed = render cells (Some (open_camp d)) in
      if resumed <> golden then
        Error
          (Printf.sprintf
             "resume after SIGKILL at %.0fms diverged from the uninterrupted \
              run:\n--- golden ---\n%s--- resumed ---\n%s"
             (delay *. 1000.) golden resumed)
      else Ok landed
  end

(* --- the campaign ------------------------------------------------------ *)

let campaign ?(seed = 42) ?dir ?(kill_trials = 6) () =
  let rng = Bisa_base.Rng.create seed in
  let scratch, cleanup =
    match dir with
    | Some d -> (d, fun () -> ())
    | None ->
      let d = fresh_scratch () in
      (d, fun () -> rm_rf d)
  in
  let cells = mk_cells () in
  let golden = render cells None in
  (* Time an uninterrupted campaign run so the SIGKILL delays actually
     land mid-flight rather than all before or all after the work. *)
  let t0 = Unix.gettimeofday () in
  let timed = render cells (Some (open_camp (Filename.concat scratch "timing"))) in
  let span = Unix.gettimeofday () -. t0 in
  if timed <> golden then
    Error "an uninterrupted campaign run already diverges from the direct run"
  else begin
    (* In-process crashes: always the very first write (campaign meta),
       then a spread of later write indexes. *)
    let hook_points =
      1
      :: List.init 5 (fun _ -> 2 + Bisa_base.Rng.int rng 30)
    in
    let rec hooks points fired =
      match points with
      | [] -> Ok fired
      | n :: rest -> begin
        match hook_trial ~dir:scratch cells golden n with
        | Error e -> Error e
        | Ok f -> hooks rest (fired + if f then 1 else 0)
      end
    in
    let rec kills i mid =
      if i >= kill_trials then Ok mid
      else
        let delay = Bisa_base.Rng.float rng (1.2 *. Float.max span 0.01) in
        match kill_trial ~dir:scratch cells golden i delay with
        | Error e -> Error e
        | Ok landed -> kills (i + 1) (mid + if landed then 1 else 0)
    in
    match hooks hook_points 0 with
    | Error e -> Error e
    | Ok hook_crashes -> begin
      match kills 0 0 with
      | Error e -> Error e
      | Ok kills_mid_flight ->
        cleanup ();
        Ok { cells = List.length cells; hook_crashes; kill_trials; kills_mid_flight }
    end
  end
