(** Seeded random MiniC program generator with shrinking.

    Programs are closed by construction — every loop is counter-bounded
    (the counter is never reassigned and always advances before a
    [continue] can skip it), calls go strictly down the function list (no
    recursion), and array indexes are masked to the array size — so a
    generated program always terminates and never trips the interpreter's
    bounds checks.  Exercised features: nested if/loops/switch,
    short-circuit operators, global scalars and arrays, function calls,
    prints, and an exactly-representable float accumulator. *)

type expr =
  | Lit of int
  | Var of string
  | Gread of int
  | Aread of int * expr
  | Unary of string * expr
  | Bin of string * expr * expr
  | Call of int * expr list

type stmt =
  | Decl of string * expr
  | Assign of string * expr
  | Gwrite of int * expr
  | Awrite of int * expr * expr
  | Print of expr
  | Facc of expr
  | Fprint
  | If of expr * stmt list * stmt list
  | For of string * int * stmt list
  | While of string * int * stmt list
  | Dowhile of string * int * stmt list
  | Switch of expr * (int * stmt list) list * stmt list
  | Break
  | Continue
  | Ret of expr

type fn = { arity : int; body : stmt list }

type prog = {
  n_scalars : int;
  n_arrays : int;
  use_float : bool;
  fns : fn list;
  main : stmt list;
}

val array_size : int

val generate : Bisa_base.Rng.t -> prog
(** Draw a program; equal generator states give equal programs. *)

val render : prog -> string
(** MiniC source.  Every function (and [main]) ends with an unconditional
    [return], so shrink candidates stay well-typed. *)

val size : prog -> int
(** AST node count — the shrinking objective. *)

val shrink : prog -> prog list
(** One-step-smaller candidates (statement drops, body splices, nested
    edits, dropping the last function).  Candidates may be ill-formed
    (orphaned declarations); callers skip those on [Compile_error]. *)
