(* Seeded random MiniC program generator for differential fuzzing.

   The generator emits *closed* programs: every control path terminates
   (loops run a fixed counter pattern whose counter is never reassigned,
   calls go strictly down the function list so there is no recursion) and
   every memory access is in bounds (array indexes are masked with the
   power-of-two array size).  Within those fences it exercises the whole
   surface the paper's toolchain compiles: nested control flow (the source
   of trap operations and merged blocks), switches, short-circuit
   operators (if-conversion / fault-op fodder), global arrays (the data
   segment), function calls, and a tightly bounded float accumulator whose
   value stays exact so outputs compare bit-for-bit across engines. *)

module Rng = Bisa_base.Rng

let array_size = 16
let idx_mask = array_size - 1

type expr =
  | Lit of int
  | Var of string  (** in-scope int local / param / loop counter *)
  | Gread of int  (** scalar global g<i> *)
  | Aread of int * expr  (** a<i>[(e) & idx_mask] *)
  | Unary of string * expr
  | Bin of string * expr * expr
  | Call of int * expr list  (** f<i>(args); arity fixed per function *)

type stmt =
  | Decl of string * expr  (** int v = e; *)
  | Assign of string * expr
  | Gwrite of int * expr
  | Awrite of int * expr * expr
  | Print of expr  (** print_int *)
  | Facc of expr  (** facc = facc * 0.5 + itof((e) & 255); *)
  | Fprint  (** print_float(facc); *)
  | If of expr * stmt list * stmt list
  | For of string * int * stmt list  (** bounded counter loop *)
  | While of string * int * stmt list  (** counter incremented first *)
  | Dowhile of string * int * stmt list
  | Switch of expr * (int * stmt list) list * stmt list
  | Break
  | Continue
  | Ret of expr

type fn = { arity : int; body : stmt list }

type prog = {
  n_scalars : int;
  n_arrays : int;
  use_float : bool;
  fns : fn list;  (** f<i> may call f<j> only for j < i *)
  main : stmt list;
}

(* ------------------------------------------------------------------ *)
(* Generation *)

type ctx = {
  rng : Rng.t;
  n_scalars : int;
  n_arrays : int;
  use_float : bool;
  arities : int array;  (** arities of the callable functions f0.. *)
  n_callable : int;
  pure : bool;
      (** inside a function body: no prints or global/array writes, so
          calls are pure and operand evaluation order is unobservable *)
  mutable fresh : int;
}

let fresh ctx prefix =
  let n = ctx.fresh in
  ctx.fresh <- n + 1;
  Printf.sprintf "%s%d" prefix n

let binops =
  [|
    "+"; "-"; "*"; "/"; "%"; "&"; "|"; "^"; "<<"; ">>"; "<"; "<="; ">"; ">="; "==";
    "!="; "&&"; "||";
  |]

let unops = [| "-"; "~"; "!" |]

let gen_lit ctx =
  if Rng.chance ctx.rng 0.1 then Rng.int_in ctx.rng (-1_000_000) 1_000_000
  else Rng.int_in ctx.rng (-64) 64

let rec gen_expr ctx ~vars ~depth =
  let leaf () =
    let n = Rng.int ctx.rng 100 in
    if n < 40 || (vars = [] && ctx.n_scalars = 0) then Lit (gen_lit ctx)
    else if n < 70 && vars <> [] then Var (Rng.choose ctx.rng (Array.of_list vars))
    else if ctx.n_scalars > 0 then Gread (Rng.int ctx.rng ctx.n_scalars)
    else Lit (gen_lit ctx)
  in
  if depth <= 0 then leaf ()
  else begin
    let sub () = gen_expr ctx ~vars ~depth:(depth - 1) in
    let n = Rng.int ctx.rng 100 in
    if n < 30 then leaf ()
    else if n < 65 then Bin (Rng.choose ctx.rng binops, sub (), sub ())
    else if n < 75 then Unary (Rng.choose ctx.rng unops, sub ())
    else if n < 90 && ctx.n_arrays > 0 then Aread (Rng.int ctx.rng ctx.n_arrays, sub ())
    else if ctx.n_callable > 0 then begin
      let f = Rng.int ctx.rng ctx.n_callable in
      Call (f, List.init ctx.arities.(f) (fun _ -> sub ()))
    end
    else Bin (Rng.choose ctx.rng binops, sub (), sub ())
  end

(* A block of [n] statements.  [vars] accumulates declarations made at
   this level; [ro] holds read-only names (loop counters — assigning to
   one could reset it below its bound and loop forever); a terminating
   statement (break/continue/return) always closes the block so no dead
   statements follow it. *)
let rec gen_block ctx ~vars ~ro ~in_loop ~depth n =
  let vars = ref vars in
  let acc = ref [] in
  let stop = ref false in
  let i = ref 0 in
  while (not !stop) && !i < n do
    incr i;
    let e ?(d = 2) () = gen_expr ctx ~vars:(ro @ !vars) ~depth:d in
    let pick = Rng.int ctx.rng 100 in
    let stmt =
      if pick < 18 then begin
        let v = fresh ctx "v" in
        let s = Decl (v, e ()) in
        vars := v :: !vars;
        s
      end
      else if pick < 30 && !vars <> [] then
        Assign (Rng.choose ctx.rng (Array.of_list !vars), e ())
      else if pick < 38 && ctx.n_scalars > 0 && not ctx.pure then
        Gwrite (Rng.int ctx.rng ctx.n_scalars, e ())
      else if pick < 46 && ctx.n_arrays > 0 && not ctx.pure then
        Awrite (Rng.int ctx.rng ctx.n_arrays, e ~d:1 (), e ())
      else if pick < 54 && not ctx.pure then Print (e ())
      else if pick < 58 && ctx.use_float && not ctx.pure then Facc (e ())
      else if pick < 60 && ctx.use_float && not ctx.pure then Fprint
      else if pick < 72 && depth > 0 then begin
        let cond = e () in
        let a = gen_block ctx ~vars:!vars ~ro ~in_loop ~depth:(depth - 1) (1 + Rng.int ctx.rng 3) in
        let b =
          if Rng.bool ctx.rng then []
          else gen_block ctx ~vars:!vars ~ro ~in_loop ~depth:(depth - 1) (1 + Rng.int ctx.rng 3)
        in
        If (cond, a, b)
      end
      else if pick < 84 && depth > 0 then begin
        let c = fresh ctx "t" in
        let bound = 1 + Rng.int ctx.rng 5 in
        let body =
          gen_block ctx ~vars:!vars ~ro:(c :: ro) ~in_loop:true ~depth:(depth - 1)
            (1 + Rng.int ctx.rng 4)
        in
        match Rng.int ctx.rng 3 with
        | 0 -> For (c, bound, body)
        | 1 -> While (c, bound, body)
        | _ -> Dowhile (c, bound, body)
      end
      else if pick < 90 && depth > 0 then begin
        let scrut = e () in
        let n_cases = 1 + Rng.int ctx.rng 3 in
        (* Distinct small case values; break/continue are suppressed inside
           arms so they can never bind surprisingly across the switch. *)
        let cases =
          List.init n_cases (fun k ->
              ( k + Rng.int ctx.rng 3,
                gen_block ctx ~vars:!vars ~ro ~in_loop:false ~depth:(depth - 1)
                  (1 + Rng.int ctx.rng 2) ))
        in
        let cases =
          List.sort_uniq (fun (a, _) (b, _) -> compare a b) cases
        in
        let dflt =
          if Rng.bool ctx.rng then []
          else gen_block ctx ~vars:!vars ~ro ~in_loop:false ~depth:(depth - 1) 1
        in
        Switch (scrut, cases, dflt)
      end
      else if pick < 93 && in_loop then begin
        stop := true;
        if Rng.bool ctx.rng then Break else Continue
      end
      else if pick < 95 then begin
        stop := true;
        Ret (e ())
      end
      else if ctx.pure then begin
        let v = fresh ctx "v" in
        let s = Decl (v, e ()) in
        vars := v :: !vars;
        s
      end
      else Print (e ())
    in
    acc := stmt :: !acc
  done;
  List.rev !acc

let gen_fn ctx =
  let arity = Rng.int ctx.rng 4 in
  let params = List.init arity (fun i -> Printf.sprintf "p%d" i) in
  let body =
    gen_block ctx ~vars:params ~ro:[] ~in_loop:false ~depth:2 (3 + Rng.int ctx.rng 5)
  in
  { arity; body }

let generate rng =
  let n_scalars = 1 + Rng.int rng 3 in
  let n_arrays = 1 + Rng.int rng 2 in
  let use_float = Rng.bool rng in
  let n_fns = Rng.int rng 4 in
  let arities = Array.make n_fns 0 in
  let ctx =
    { rng; n_scalars; n_arrays; use_float; arities; n_callable = 0; pure = true; fresh = 0 }
  in
  (* Function bodies are pure (reads only): calls appear inside compound
     expressions, where an impure call would make operand evaluation order
     observable — a divergence the ISAs are allowed to have. *)
  let fns =
    List.init n_fns (fun i ->
        let f = gen_fn { ctx with n_callable = i } in
        arities.(i) <- f.arity;
        f)
  in
  let main =
    gen_block
      { ctx with n_callable = n_fns; pure = false }
      ~vars:[] ~ro:[] ~in_loop:false ~depth:3
      (6 + Rng.int rng 6)
  in
  { n_scalars; n_arrays; use_float; fns; main }

(* ------------------------------------------------------------------ *)
(* Rendering to MiniC source *)

let rec rexpr = function
  | Lit n -> if n < 0 then Printf.sprintf "(0 - %d)" (-n) else string_of_int n
  | Var v -> v
  | Gread i -> Printf.sprintf "g%d" i
  | Aread (a, e) -> Printf.sprintf "a%d[(%s) & %d]" a (rexpr e) idx_mask
  | Unary (op, e) -> Printf.sprintf "(%s(%s))" op (rexpr e)
  | Bin (op, l, r) -> Printf.sprintf "((%s) %s (%s))" (rexpr l) op (rexpr r)
  | Call (f, args) ->
    Printf.sprintf "f%d(%s)" f (String.concat ", " (List.map rexpr args))

let rec rstmt buf = function
  | Decl (v, e) -> Printf.bprintf buf "int %s = %s;\n" v (rexpr e)
  | Assign (v, e) -> Printf.bprintf buf "%s = %s;\n" v (rexpr e)
  | Gwrite (g, e) -> Printf.bprintf buf "g%d = %s;\n" g (rexpr e)
  | Awrite (a, i, e) ->
    Printf.bprintf buf "a%d[(%s) & %d] = %s;\n" a (rexpr i) idx_mask (rexpr e)
  | Print e -> Printf.bprintf buf "print_int(%s);\n" (rexpr e)
  | Facc e -> Printf.bprintf buf "facc = facc * 0.5 + itof((%s) & 255);\n" (rexpr e)
  | Fprint -> Buffer.add_string buf "print_float(facc);\n"
  | If (c, a, []) ->
    Printf.bprintf buf "if (%s) {\n" (rexpr c);
    List.iter (rstmt buf) a;
    Buffer.add_string buf "}\n"
  | If (c, a, b) ->
    Printf.bprintf buf "if (%s) {\n" (rexpr c);
    List.iter (rstmt buf) a;
    Buffer.add_string buf "} else {\n";
    List.iter (rstmt buf) b;
    Buffer.add_string buf "}\n"
  | For (c, n, body) ->
    Printf.bprintf buf "int %s;\nfor (%s = 0; %s < %d; %s = %s + 1) {\n" c c c n c c;
    List.iter (rstmt buf) body;
    Buffer.add_string buf "}\n"
  | While (c, n, body) ->
    (* The counter advances before anything else so a 'continue' in the
       body cannot make the loop infinite. *)
    Printf.bprintf buf "int %s = 0;\nwhile (%s < %d) {\n%s = %s + 1;\n" c c n c c;
    List.iter (rstmt buf) body;
    Buffer.add_string buf "}\n"
  | Dowhile (c, n, body) ->
    Printf.bprintf buf "int %s = 0;\ndo {\n%s = %s + 1;\n" c c c;
    List.iter (rstmt buf) body;
    Printf.bprintf buf "} while (%s < %d);\n" c n
  | Switch (e, cases, dflt) ->
    Printf.bprintf buf "switch (%s) {\n" (rexpr e);
    List.iter
      (fun (v, body) ->
        Printf.bprintf buf "case %d:\n" v;
        List.iter (rstmt buf) body)
      cases;
    if dflt <> [] then begin
      Buffer.add_string buf "default:\n";
      List.iter (rstmt buf) dflt
    end;
    Buffer.add_string buf "}\n"
  | Break -> Buffer.add_string buf "break;\n"
  | Continue -> Buffer.add_string buf "continue;\n"
  | Ret e -> Printf.bprintf buf "return %s;\n" (rexpr e)

let render (p : prog) =
  let buf = Buffer.create 1024 in
  for i = 0 to p.n_scalars - 1 do
    Printf.bprintf buf "int g%d;\n" i
  done;
  for i = 0 to p.n_arrays - 1 do
    Printf.bprintf buf "int a%d[%d];\n" i array_size
  done;
  if p.use_float then Buffer.add_string buf "float facc;\n";
  List.iteri
    (fun i (f : fn) ->
      let params =
        String.concat ", " (List.init f.arity (fun k -> Printf.sprintf "int p%d" k))
      in
      Printf.bprintf buf "int f%d(%s) {\n" i params;
      List.iter (rstmt buf) f.body;
      (* Unconditional trailing return keeps every shrink candidate
         well-typed even after a generated 'return' is deleted. *)
      Buffer.add_string buf "return 0;\n}\n"
    )
    p.fns;
  Buffer.add_string buf "int main() {\n";
  List.iter (rstmt buf) p.main;
  Buffer.add_string buf "return 0;\n}\n";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Size and shrinking *)

let rec expr_size = function
  | Lit _ | Var _ | Gread _ -> 1
  | Aread (_, e) | Unary (_, e) -> 1 + expr_size e
  | Bin (_, l, r) -> 1 + expr_size l + expr_size r
  | Call (_, args) -> 1 + List.fold_left (fun a e -> a + expr_size e) 0 args

let rec stmt_size = function
  | Decl (_, e) | Assign (_, e) | Gwrite (_, e) | Print e | Facc e | Ret e ->
    1 + expr_size e
  | Awrite (_, i, e) -> 1 + expr_size i + expr_size e
  | Fprint | Break | Continue -> 1
  | If (c, a, b) -> 1 + expr_size c + block_size a + block_size b
  | For (_, _, b) | While (_, _, b) | Dowhile (_, _, b) -> 2 + block_size b
  | Switch (e, cases, d) ->
    1 + expr_size e
    + List.fold_left (fun acc (_, b) -> acc + 1 + block_size b) 0 cases
    + block_size d

and block_size ss = List.fold_left (fun a s -> a + stmt_size s) 0 ss

let size (p : prog) =
  List.fold_left (fun a (f : fn) -> a + 1 + block_size f.body) (block_size p.main)
    p.fns

(* One-step shrink candidates for a statement: replace a compound
   statement by (some of) its components. *)
let stmt_variants = function
  | If (_, a, b) -> [ a; b ]
  | For (_, _, b) | While (_, _, b) | Dowhile (_, _, b) -> [ b ]
  | Switch (_, cases, d) -> d :: List.map snd cases
  | _ -> []

(* All statement lists reachable by one edit: drop a statement, splice a
   compound statement's body in its place, or edit inside it.  Candidates
   that orphan a declaration fail to compile and are skipped by the
   oracle. *)
let rec list_edits ss =
  match ss with
  | [] -> []
  | s :: rest ->
    (rest :: List.map (fun v -> v @ rest) (stmt_variants s))
    @ List.map (fun s' -> s' :: rest) (stmt_edits s)
    @ List.map (fun r -> s :: r) (list_edits rest)

and stmt_edits s =
  match s with
  | If (c, a, b) ->
    List.map (fun a' -> If (c, a', b)) (list_edits a)
    @ List.map (fun b' -> If (c, a, b')) (list_edits b)
  | For (v, n, b) -> List.map (fun b' -> For (v, n, b')) (list_edits b)
  | While (v, n, b) -> List.map (fun b' -> While (v, n, b')) (list_edits b)
  | Dowhile (v, n, b) -> List.map (fun b' -> Dowhile (v, n, b')) (list_edits b)
  | Switch (e, cases, d) ->
    List.concat
      (List.mapi
         (fun i (v, b) ->
           List.map
             (fun b' ->
               Switch (e, List.mapi (fun j c -> if j = i then (v, b') else c) cases, d))
             (list_edits b))
         cases)
    @ List.map (fun d' -> Switch (e, cases, d')) (list_edits d)
  | _ -> []

let shrink (p : prog) =
  let drop_fn =
    (* Dropping f<i> renames nothing: remaining functions keep their
       indexes only if we drop from the tail, so only offer the last
       function (callers of earlier ones would go dangling anyway and be
       skipped as ill-formed). *)
    match List.rev p.fns with
    | [] -> []
    | _ :: kept_rev -> [ { p with fns = List.rev kept_rev } ]
  in
  let main_edits = List.map (fun m -> { p with main = m }) (list_edits p.main) in
  let fn_edits =
    List.concat
      (List.mapi
         (fun i (f : fn) ->
           List.map
             (fun b ->
               {
                 p with
                 fns = List.mapi (fun j g -> if j = i then { g with body = b } else g) p.fns;
               })
             (list_edits f.body))
         p.fns)
  in
  drop_fn @ main_edits @ fn_edits
