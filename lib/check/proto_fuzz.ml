(* Wire-protocol mutation fuzzer for the bisad codec.

   Mirrors Decode_fuzz for Bisa_proto: starting from valid encoded
   request/response payloads (and framed streams of them), applies random
   bit flips, byte rewrites, truncations and junk extensions, then
   requires the decoder to either produce a value or raise [Diag.Fail]
   whose diagnostic carries component "proto" and a byte offset — never
   another exception, a hang, or an allocation driven by attacker-chosen
   length fields.  Pristine payloads must round-trip exactly. *)

module Proto = Bisa_proto.Proto
module Diag = Bisa_base.Diag
module Rng = Bisa_base.Rng

type report = {
  mutants : int;
  decoded : int;  (** mutants that still decoded to some value *)
  rejected : int;  (** mutants rejected with a located "proto" Diag *)
}

(* --- the corpus ----------------------------------------------------------- *)

let some_diags =
  [
    Diag.error ~component:"verify" "rule B3: fall-through out of block 2";
    Diag.warning
      ~loc:(Diag.Src { line = 3; col = 7 })
      ~component:"compiler" "unused variable x";
    Diag.make ~severity:Diag.Note
      ~loc:(Diag.Byte { offset = 42; section = "conv.body" })
      ~component:"encode" "trailing bytes";
  ]

let cfg_a = Proto.default_sim_cfg

let cfg_b =
  {
    Proto.icache_kb = 0;
    perfect_pred = true;
    budget = 123_456;
    out_cap = Some 64;
    deadline = Some 2.5;
  }

let src_source =
  Proto.Source { src = "int main() { return 3; }"; libs = [ "int f(int x);" ] }

let src_conv = Proto.Conv_bin "\x00\x01binary-ish\xff\x7f bytes"
let src_block_bytes = String.init 64 (fun i -> Char.chr (i * 5 land 255))
let src_block = Proto.Block_bin src_block_bytes

let requests : Proto.request list =
  [
    Proto.Ping;
    Proto.Stats;
    Proto.Shutdown;
    Proto.Compile { src = src_source; isa = Proto.Conv };
    Proto.Compile { src = src_block; isa = Proto.Block };
    Proto.Verify { src = src_conv };
    Proto.Simulate
      {
        src = src_source;
        isa = Proto.Block;
        mode = Proto.Timing;
        exec = Bisa_sim.Compile.Interp;
        cfg = cfg_a;
        show_output = true;
      };
    Proto.Simulate
      {
        src = src_conv;
        isa = Proto.Conv;
        mode = Proto.Functional;
        exec = Bisa_sim.Compile.Compiled;
        cfg = cfg_b;
        show_output = false;
      };
    Proto.Cell
      {
        bench = "m88ksim";
        scale = Some 3;
        isa = Proto.Block;
        exec = Bisa_sim.Compile.Interp;
        cfg = cfg_a;
      };
    Proto.Batch
      [
        Proto.Ping;
        Proto.Verify { src = src_source };
        Proto.Cell
          {
            bench = "li";
            scale = None;
            isa = Proto.Conv;
            exec = Bisa_sim.Compile.Compiled;
            cfg = cfg_b;
          };
      ];
  ]

let responses : Proto.response list =
  [
    Proto.Pong { server = Proto.version };
    Proto.Binary { isa = Proto.Block; bytes = src_block_bytes; prog_hash = 0x0123_4567_89ab_cdefL };
    Proto.Verdict { diags = [] };
    Proto.Verdict { diags = some_diags };
    Proto.Sim
      {
        stdout = "7\n812 dynamic operations, exit value 7\n";
        notes = "";
        prog_hash = -1L;
        cached = false;
      };
    Proto.Cell_done { summary = "li/block: IPC 1.93 ..."; prog_hash = 99L; cached = true };
    Proto.Stats_r
      {
        served = 100_001;
        sim_hits = 99_000;
        sim_misses = 8;
        artifacts = 16;
        results = 4096;
        spooled = 4104;
        spool_skipped = 2;
        inflight_peak = 64;
        rss_kb = 10_608;
      };
    Proto.Bye;
    Proto.Batch_r [ Proto.Pong { server = Proto.version }; Proto.Bye ];
    Proto.Err some_diags;
  ]

(* --- the contract --------------------------------------------------------- *)

(* A rejection only counts if it is the documented shape: component
   "proto", error severity, and a byte offset within the payload naming a
   section. *)
let rejection_ok payload (d : Diag.t) =
  match d.Diag.loc with
  | Diag.Byte { offset; section }
    when d.Diag.component = "proto"
         && offset >= 0
         && offset <= String.length payload
         && section <> "" ->
    Ok false
  | _ ->
    Error
      (Printf.sprintf "rejection without a located \"proto\" diagnostic: %s"
         (Diag.render d))

let check_payload decode payload =
  match decode payload with
  | _ -> Ok true
  | exception Diag.Fail d -> rejection_ok payload d
  | exception exn -> Error (Printf.sprintf "decoder raised %s" (Printexc.to_string exn))

(* Feed a (possibly mutated) byte stream to the framing layer in random
   chunks, decoding every peeled payload.  The contract covers both
   layers: a bad length prefix or a bad payload must surface as a located
   "proto" Diag, and the peel loop must always advance. *)
let check_stream rng decode stream =
  let buf = Buffer.create (String.length stream) in
  let pos = ref 0 in
  let fed = ref 0 in
  let rec go decoded =
    match Proto.peel_frame buf !pos with
    | Some (payload, next) ->
      if next <= !pos then Error "peel_frame did not advance"
      else begin
        pos := next;
        match check_payload decode payload with
        | Ok ok -> go (decoded || ok)
        | Error _ as e -> e
      end
    | None ->
      if !fed >= String.length stream then
        (* Clean end: everything decodable was decoded; a trailing
           partial frame is just "need more bytes". *)
        Ok decoded
      else begin
        let n = min (1 + Rng.int rng 7) (String.length stream - !fed) in
        Buffer.add_substring buf stream !fed n;
        fed := !fed + n;
        go decoded
      end
    | exception Diag.Fail d -> rejection_ok stream d
    | exception exn ->
      Error (Printf.sprintf "framing raised %s" (Printexc.to_string exn))
  in
  go false

(* --- campaigns ------------------------------------------------------------ *)

let round_trip () =
  let check what eq xs encode decode =
    List.iteri
      (fun i x ->
        let back = decode (encode x) in
        if not (eq back x) then
          failwith (Printf.sprintf "%s %d did not round-trip" what i))
      xs
  in
  match
    check "request" ( = ) requests Proto.encode_request Proto.decode_request;
    check "response" ( = ) responses Proto.encode_response Proto.decode_response
  with
  | () -> Ok ()
  | exception Failure e -> Error e

let corpus =
  lazy
    (List.map (fun r -> (Proto.encode_request r, `Req)) requests
    @ List.map (fun r -> (Proto.encode_response r, `Resp)) responses)

let decode_of = function
  | `Req -> fun s -> ignore (Proto.decode_request s : Proto.request)
  | `Resp -> fun s -> ignore (Proto.decode_response s : Proto.response)

(* One mutant: pick a corpus payload, mutate it, decode it; every third
   mutant instead mutates a framed two-payload stream and runs it through
   the chunked framing loop. *)
let check_one rng =
  let payloads = Lazy.force corpus in
  let pick () = List.nth payloads (Rng.int rng (List.length payloads)) in
  let payload, kind = pick () in
  if Rng.int rng 3 = 0 then begin
    let p2, k2 = pick () in
    let stream = Proto.frame payload ^ Proto.frame p2 in
    let stream = Decode_fuzz.mutate rng stream in
    (* Both payload kinds can land in one stream; decode by the first
       pick's kind only when kinds agree, else accept either decoder. *)
    let decode s =
      if kind = k2 then decode_of kind s
      else match decode_of kind s with () -> () | exception Diag.Fail _ -> decode_of k2 s
    in
    check_stream rng decode stream
  end
  else check_payload (decode_of kind) (Decode_fuzz.mutate rng payload)

let run ?(pool = Bisa_base.Pool.sequential) ~seed ~count () =
  match round_trip () with
  | Error e -> Error ("pristine payloads: " ^ e)
  | Ok () ->
    (* Mutant [i] is seeded from [Rng.derive seed i], so the campaign
       shards across the pool deterministically (see Decode_fuzz). *)
    let indices = List.init count Fun.id in
    let outcomes =
      Bisa_base.Pool.map_list pool (fun i -> (i, check_one (Rng.derive seed i))) indices
    in
    let decoded = ref 0 and rejected = ref 0 in
    let rec tally = function
      | [] -> Ok { mutants = count; decoded = !decoded; rejected = !rejected }
      | (_, Ok true) :: rest ->
        incr decoded;
        tally rest
      | (_, Ok false) :: rest ->
        incr rejected;
        tally rest
      | (i, Error e) :: _ -> Error (Printf.sprintf "mutant %d (seed %d): %s" i seed e)
    in
    tally outcomes
