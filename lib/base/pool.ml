(* A fixed-size Domain pool over one mutex-protected queue.

   Two invariants carry all the correctness arguments below:

   1. A future is Pending iff its task is either still in the queue or
      currently executing on some domain.  Queue operations happen under
      [t.m], and the executing domain settles the future (under the
      future's own mutex) before touching the queue again.

   2. [await] never blocks while the queue is non-empty: it first tries
      to pop and run a task itself.  So if every domain is blocked in
      [await], every pending task is already executing somewhere — which
      is impossible when all of them are blocked — hence no deadlock,
      including for nested [map_list] calls from inside pool tasks. *)

type t = {
  size : int;  (* total parallelism, including the submitting domain *)
  m : Mutex.t;
  work_ready : Condition.t;
  queue : (unit -> unit) Queue.t;
  mutable stop : bool;
  mutable domains : unit Domain.t list;
}

type 'a state =
  | Pending
  | Done of 'a
  | Raised of exn * Printexc.raw_backtrace

type 'a future = {
  fm : Mutex.t;
  fc : Condition.t;
  mutable st : 'a state;
  pool : t;
}

let default_workers () = max 1 (Domain.recommended_domain_count ())
let workers t = t.size

let settle fut st =
  Mutex.lock fut.fm;
  fut.st <- st;
  Condition.broadcast fut.fc;
  Mutex.unlock fut.fm

let run_task fut f =
  match f () with
  | v -> settle fut (Done v)
  | exception e -> settle fut (Raised (e, Printexc.get_raw_backtrace ()))

let rec worker_loop t =
  Mutex.lock t.m;
  let rec next () =
    if t.stop then None
    else
      match Queue.take_opt t.queue with
      | Some _ as task -> task
      | None ->
        Condition.wait t.work_ready t.m;
        next ()
  in
  let task = next () in
  Mutex.unlock t.m;
  match task with
  | None -> ()
  | Some task ->
    task ();
    worker_loop t

let create ?workers () =
  let size = max 1 (Option.value workers ~default:(default_workers ())) in
  let t =
    {
      size;
      m = Mutex.create ();
      work_ready = Condition.create ();
      queue = Queue.create ();
      stop = false;
      domains = [];
    }
  in
  t.domains <- List.init (size - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let sequential = create ~workers:1 ()

let shutdown t =
  Mutex.lock t.m;
  t.stop <- true;
  Condition.broadcast t.work_ready;
  Mutex.unlock t.m;
  List.iter Domain.join t.domains;
  t.domains <- []

let run ?workers f =
  let t = create ?workers () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let submit t f =
  let fut = { fm = Mutex.create (); fc = Condition.create (); st = Pending; pool = t } in
  if t.size <= 1 then run_task fut f
  else begin
    Mutex.lock t.m;
    if t.stop then begin
      Mutex.unlock t.m;
      invalid_arg "Pool.submit: pool is shut down"
    end;
    Queue.add (fun () -> run_task fut f) t.queue;
    Condition.signal t.work_ready;
    Mutex.unlock t.m
  end;
  fut

(* Pop-and-run one queued task, if any. *)
let try_help t =
  Mutex.lock t.m;
  let task = Queue.take_opt t.queue in
  Mutex.unlock t.m;
  match task with
  | Some f ->
    f ();
    true
  | None -> false

let rec await fut =
  Mutex.lock fut.fm;
  match fut.st with
  | Done v ->
    Mutex.unlock fut.fm;
    v
  | Raised (e, bt) ->
    Mutex.unlock fut.fm;
    Printexc.raise_with_backtrace e bt
  | Pending ->
    Mutex.unlock fut.fm;
    if try_help fut.pool then await fut
    else begin
      (* Queue drained, so by invariant 1 this task is executing on some
         other domain; block until it settles (re-checking under the lock
         against the settle that may have raced the drain check). *)
      Mutex.lock fut.fm;
      (match fut.st with Pending -> Condition.wait fut.fc fut.fm | Done _ | Raised _ -> ());
      Mutex.unlock fut.fm;
      await fut
    end

let map_list t f xs =
  if t.size <= 1 then List.map f xs
  else begin
    let futures = List.map (fun x -> submit t (fun () -> f x)) xs in
    (* Settle everything first, then re-raise the earliest failure, so no
       task keeps running after the call returns. *)
    let settled =
      List.map
        (fun fut ->
          match await fut with
          | v -> Ok v
          | exception e -> Error (e, Printexc.get_raw_backtrace ()))
        futures
    in
    List.map
      (function Ok v -> v | Error (e, bt) -> Printexc.raise_with_backtrace e bt)
      settled
  end

let map_reduce t ~map ~reduce ~init xs = List.fold_left reduce init (map_list t map xs)

module Once = struct
  type 'a once_state =
    | Unforced of (unit -> 'a)
    | Forced of 'a
    | Failed of exn * Printexc.raw_backtrace

  type 'a cell = { om : Mutex.t; mutable ost : 'a once_state }

  let make f = { om = Mutex.create (); ost = Unforced f }

  (* The mutex is held across the computation: concurrent forcers block
     until the single evaluation settles the cell. *)
  let force c =
    Mutex.lock c.om;
    match c.ost with
    | Forced v ->
      Mutex.unlock c.om;
      v
    | Failed (e, bt) ->
      Mutex.unlock c.om;
      Printexc.raise_with_backtrace e bt
    | Unforced f -> begin
      match f () with
      | v ->
        c.ost <- Forced v;
        Mutex.unlock c.om;
        v
      | exception e ->
        let bt = Printexc.get_raw_backtrace () in
        c.ost <- Failed (e, bt);
        Mutex.unlock c.om;
        Printexc.raise_with_backtrace e bt
    end
end
