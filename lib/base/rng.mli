(** Deterministic pseudo-random number generation.

    All randomness in the toolchain (workload inputs, property tests,
    synthetic traces) flows through this module so that every experiment is
    exactly reproducible from a seed.  The generator is splitmix64, which is
    cheap, statistically solid for simulation purposes, and splittable. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator.  Equal seeds give equal streams. *)

val split : t -> t
(** [split t] derives an independent generator from [t], advancing [t]. *)

val copy : t -> t
(** [copy t] duplicates the current state without advancing [t]. *)

val state : t -> int64
val set_state : t -> int64 -> unit
(** Raw generator state, for checkpoint snapshots: restoring the saved
    state resumes the exact stream. *)

val derive : int -> int -> t
(** [derive seed i] makes the [i]th generator of the family rooted at
    [seed]: a pure function of [(seed, i)], with the streams of
    neighbouring [i] decorrelated by the splitmix finalizer.  This is
    how sharded campaigns seed each work item — from the item's own
    index, never from shared mutable generator state — so results are
    identical at every worker count. *)

val next : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  [bound] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. *)

val bool : t -> bool
(** Fair coin. *)

val chance : t -> float -> bool
(** [chance t p] is true with probability [p]. *)

val float : t -> float -> float
(** [float t x] is uniform in [\[0, x)]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)
