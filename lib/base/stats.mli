(** Lightweight statistics accumulators used by the simulators and the
    experiment harness. *)

(** Running mean / min / max / count over observed values. *)
module Mean : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val add_n : t -> float -> int -> unit
  (** [add_n t v n] records [n] observations of value [v]. *)

  val count : t -> int
  val total : t -> float
  val mean : t -> float
  (** 0.0 when empty. *)

  val min : t -> float
  val max : t -> float
end

(** Integer-bucketed histogram. *)
module Histogram : sig
  type t

  val create : buckets:int -> t
  (** Buckets [0 .. buckets-1]; out-of-range values clamp to the ends. *)

  val add : t -> int -> unit
  val count : t -> int -> int
  val total : t -> int
  val mean : t -> float
  val percentile : t -> float -> int
  (** [percentile t 0.5] is the median bucket; 0 when empty. *)

  val iter : t -> (int -> int -> unit) -> unit

  val save : t -> Codec.W.t -> unit
  val load : t -> Codec.R.t -> unit
  (** Checkpoint the bucket counts; [load] requires an identically-sized
      histogram and raises [Invalid_argument] otherwise. *)
end

val ratio : int -> int -> float
(** [ratio num den] = [num/den] as float, 0.0 when [den] = 0. *)

val percent_change : float -> float -> float
(** [percent_change base v] = 100*(v-base)/base. *)

val geomean : float list -> float
(** Geometric mean of positive values; 0.0 on empty input. *)
