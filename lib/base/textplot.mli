(** ASCII bar charts, used to render the paper's figures in terminal output.

    Each figure in the evaluation is a grouped bar chart (one group per
    benchmark, one bar per configuration); this module reproduces that
    layout in plain text. *)

type series = { label : string; values : float list }

val profile :
  title:string ->
  unit_label:string ->
  values:float array ->
  ?width:int ->
  ?height:int ->
  unit ->
  string
(** [profile ~title ~unit_label ~values ()] renders a time series as an
    ASCII column chart ([height] rows, default 8; at most [width] columns,
    default 64 — longer series are mean-resampled).  Used for the
    pipeline-occupancy timeline of the observability layer. *)

val grouped_bars :
  title:string ->
  unit_label:string ->
  groups:string list ->
  series:series list ->
  ?width:int ->
  unit ->
  string
(** [grouped_bars ~title ~unit_label ~groups ~series ()] renders one bar per
    [(group, series)] pair, scaled so the longest bar is [width] characters
    (default 50).  Every series must have exactly one value per group. *)
