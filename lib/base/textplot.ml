type series = { label : string; values : float list }

let profile ~title ~unit_label ~values ?(width = 64) ?(height = 8) () =
  let n = Array.length values in
  if n = 0 then title ^ "  (no samples)\n"
  else begin
    let cols = max 1 (min width n) in
    (* Mean-resample the series into [cols] columns. *)
    let col = Array.make cols 0.0 and cnt = Array.make cols 0 in
    Array.iteri
      (fun i v ->
        let c = i * cols / n in
        col.(c) <- col.(c) +. v;
        cnt.(c) <- cnt.(c) + 1)
      values;
    for c = 0 to cols - 1 do
      if cnt.(c) > 0 then col.(c) <- col.(c) /. float_of_int cnt.(c)
    done;
    let vmax = Array.fold_left Float.max 0.0 col in
    let vmax = if vmax <= 0.0 then 1.0 else vmax in
    let buf = Buffer.create 1024 in
    Printf.bprintf buf "%s  (y: %s)\n" title unit_label;
    for row = height downto 1 do
      let thresh = (float_of_int row -. 0.5) /. float_of_int height *. vmax in
      Buffer.add_string buf
        (if row = height then Printf.sprintf "%8.1f |" vmax else "         |");
      for c = 0 to cols - 1 do
        Buffer.add_char buf (if col.(c) >= thresh then '#' else ' ')
      done;
      Buffer.add_char buf '\n'
    done;
    Printf.bprintf buf "%8.1f +%s\n" 0.0 (String.make cols '-');
    Buffer.contents buf
  end

let grouped_bars ~title ~unit_label ~groups ~series ?(width = 50) () =
  List.iter
    (fun s ->
      if List.length s.values <> List.length groups then
        invalid_arg "Textplot.grouped_bars: series length mismatch")
    series;
  let vmax =
    List.fold_left
      (fun acc s -> List.fold_left (fun acc v -> Float.max acc v) acc s.values)
      0.0 series
  in
  let vmax = if vmax <= 0.0 then 1.0 else vmax in
  let label_width =
    List.fold_left (fun acc s -> max acc (String.length s.label)) 0 series
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf title;
  Buffer.add_string buf (Printf.sprintf "  (bar unit: %s)\n" unit_label);
  List.iteri
    (fun gi group ->
      Buffer.add_string buf group;
      Buffer.add_char buf '\n';
      List.iter
        (fun s ->
          let v = List.nth s.values gi in
          let n = int_of_float (Float.round (v /. vmax *. float_of_int width)) in
          let n = if v > 0.0 && n = 0 then 1 else n in
          Buffer.add_string buf
            (Printf.sprintf "  %-*s |%s %.3f\n" label_width s.label
               (String.make n '#') v))
        series)
    groups;
  Buffer.contents buf
