(** Compact binary state codec for checkpoint snapshots.

    Every checkpointable component (executors, timing engine, predictors,
    caches, metrics) serializes itself through {!W} and rebuilds through
    {!R}.  Integers are zigzag-varint with the full 63-bit range, floats
    are IEEE-754 bits, and {!W.section} / {!R.section} frame each
    component so a snapshot that no longer matches the code fails with
    the component's name.  All reader failures raise a structured
    {!Bisa_base.Diag.Fail} with component ["codec"]. *)

module W : sig
  type t

  val create : unit -> t
  val contents : t -> string
  val length : t -> int
  val int : t -> int -> unit
  val i64 : t -> int64 -> unit
  val bool : t -> bool -> unit
  val float : t -> float -> unit
  val string : t -> string -> unit
  val bytes : t -> Bytes.t -> unit
  val int_array : t -> int array -> unit
  val float_array : t -> float array -> unit
  val option : t -> (t -> 'a -> unit) -> 'a option -> unit

  val section : t -> string -> unit
  (** Write a named section marker the reader will verify. *)
end

module R : sig
  type t

  val of_string : ?pos:int -> string -> t
  val pos : t -> int
  val at_end : t -> bool
  val int : t -> int
  val i64 : t -> int64
  val bool : t -> bool
  val float : t -> float
  val string : t -> string
  val bytes : t -> Bytes.t
  val int_array : t -> int array
  val float_array : t -> float array
  val option : t -> (t -> 'a) -> 'a option

  val section : t -> string -> unit
  (** Check the next marker is the named section; raises {!Bisa_base.Diag.Fail}
      naming both sections otherwise. *)
end

val fnv1a64 : string -> int64
(** FNV-1a content hash, used to bind snapshots to the exact program
    bytes and configuration they were taken under. *)

val hash_hex : string -> string
(** [fnv1a64] rendered as 16 lowercase hex digits. *)
