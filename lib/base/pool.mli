(** Fixed-size [Domain]-based worker pool with futures.

    One pool serves a whole run: the experiment grids, the fuzz
    campaigns, and the benchmark harness all share it so the machine is
    never oversubscribed.  [workers] counts the {e total} parallelism,
    including the submitting domain — a pool of size [n] spawns [n - 1]
    worker domains, and [await] lends the caller's domain to the queue
    while it waits, so nested [map_list] calls cannot deadlock and
    [~workers:1] degenerates to plain, eager, in-order sequential
    execution with no domains spawned at all.

    Determinism contract: [map_list] and [map_reduce] return results in
    submission order no matter which domain ran which item or in what
    order they finished, so any pipeline that derives per-item state
    (e.g. {!Rng.derive} seeds) from the work item itself produces
    byte-identical output at every [workers] setting. *)

type t

val default_workers : unit -> int
(** [Domain.recommended_domain_count ()], at least 1 — the [-j] default. *)

val create : ?workers:int -> unit -> t
(** [create ~workers ()] spawns [max 1 workers - 1] worker domains
    (default {!default_workers}). *)

val sequential : t
(** A shared size-1 pool: every submission runs eagerly on the caller's
    domain.  The default for library entry points, so nothing is
    parallel unless a CLI threads a real pool through. *)

val workers : t -> int
(** Total parallelism (worker domains + the caller). *)

val shutdown : t -> unit
(** Stop and join the worker domains.  Tasks still queued are dropped
    unstarted; call only once every submitted future has been awaited.
    Idempotent. *)

val run : ?workers:int -> (t -> 'a) -> 'a
(** [run ~workers f] is [f pool] bracketed by [create]/[shutdown]. *)

(** {1 Futures} *)

type 'a future

val submit : t -> (unit -> 'a) -> 'a future
(** Enqueue a task.  On a size-1 pool the task runs before [submit]
    returns.  Raises [Invalid_argument] after [shutdown]. *)

val await : 'a future -> 'a
(** Block until the task settles, re-raising (with its original
    backtrace) if it raised.  While the task is still queued, the
    awaiting domain executes other queued tasks instead of idling. *)

val map_list : t -> ('a -> 'b) -> 'a list -> 'b list
(** Parallel [List.map] with results in input order.  If any item
    raises, the exception of the {e earliest} failing item is re-raised,
    and only after every item has settled (no task outlives the call). *)

val map_reduce : t -> map:('a -> 'b) -> reduce:('c -> 'b -> 'c) -> init:'c -> 'a list -> 'c
(** Parallel map, then an in-order sequential left fold — deterministic
    even when [reduce] is not commutative. *)

(** {1 Once cells}

    A domain-safe replacement for [lazy] (plain [Lazy.force] raises
    [Lazy.Undefined] under concurrent forcing on OCaml 5): the thunk
    runs exactly once, concurrent forcers block until it settles, and an
    exception poisons the cell for every later forcer. *)

module Once : sig
  type 'a cell

  val make : (unit -> 'a) -> 'a cell
  val force : 'a cell -> 'a
end
