(* Compact binary state codec for checkpoint snapshots.

   The writer appends zigzag-varint integers (full 63-bit range — the
   encoding goes through Int64, so max_int-magnitude values round-trip),
   IEEE-754 floats, strings and arrays to a growable buffer; the reader
   mirrors it and turns every malformed read into a structured
   {!Diag.Fail} instead of an exception from the depths of [String].
   Section tags frame each component's state so a snapshot that drifts
   out of sync with the code fails with the section name, not a random
   decode error thousands of bytes later. *)

let corrupt fmt =
  Printf.ksprintf
    (fun message ->
      raise (Diag.Fail (Diag.error ~component:"codec" ("corrupt snapshot: " ^ message))))
    fmt

module W = struct
  type t = Buffer.t

  let create () = Buffer.create 4096
  let contents = Buffer.contents
  let length = Buffer.length

  let u64 b v =
    let v = ref v in
    let continue_ = ref true in
    while !continue_ do
      let low = Int64.to_int (Int64.logand !v 0x7FL) in
      v := Int64.shift_right_logical !v 7;
      if Int64.equal !v 0L then begin
        Buffer.add_char b (Char.chr low);
        continue_ := false
      end
      else Buffer.add_char b (Char.chr (low lor 0x80))
    done

  let i64 b v =
    (* zigzag so small negative ints stay short *)
    u64 b Int64.(logxor (shift_left v 1) (shift_right v 63))

  let int b v = i64 b (Int64.of_int v)
  let bool b v = int b (if v then 1 else 0)
  let float b v = u64 b (Int64.bits_of_float v)

  let string b s =
    int b (String.length s);
    Buffer.add_string b s

  let bytes b s =
    int b (Bytes.length s);
    Buffer.add_bytes b s

  let int_array b a =
    int b (Array.length a);
    Array.iter (int b) a

  let float_array b a =
    int b (Array.length a);
    Array.iter (float b) a

  let option b f = function
    | None -> bool b false
    | Some v ->
      bool b true;
      f b v

  let section b name = string b ("#" ^ name)
end

module R = struct
  type t = { s : string; mutable pos : int }

  let of_string ?(pos = 0) s = { s; pos }
  let pos t = t.pos
  let at_end t = t.pos >= String.length t.s

  let byte t =
    if t.pos >= String.length t.s then corrupt "truncated at byte %d" t.pos;
    let c = Char.code t.s.[t.pos] in
    t.pos <- t.pos + 1;
    c

  let u64 t =
    let rec go shift acc =
      if shift > 63 then corrupt "varint overruns 64 bits at byte %d" t.pos;
      let c = byte t in
      let acc = Int64.logor acc (Int64.shift_left (Int64.of_int (c land 0x7F)) shift) in
      if c land 0x80 = 0 then acc else go (shift + 7) acc
    in
    go 0 0L

  let i64 t =
    let v = u64 t in
    Int64.(logxor (shift_right_logical v 1) (neg (logand v 1L)))

  let int t = Int64.to_int (i64 t)
  let bool t = int t <> 0
  let float t = Int64.float_of_bits (u64 t)

  let string t =
    let n = int t in
    if n < 0 || t.pos + n > String.length t.s then
      corrupt "string of length %d overruns snapshot at byte %d" n t.pos;
    let s = String.sub t.s t.pos n in
    t.pos <- t.pos + n;
    s

  let bytes t = Bytes.of_string (string t)

  let int_array t =
    let n = int t in
    if n < 0 then corrupt "negative array length at byte %d" t.pos;
    Array.init n (fun _ -> int t)

  let float_array t =
    let n = int t in
    if n < 0 then corrupt "negative array length at byte %d" t.pos;
    Array.init n (fun _ -> float t)

  let option t f = if bool t then Some (f t) else None

  let section t name =
    let got = string t in
    if got <> "#" ^ name then corrupt "expected section %S, found %S" ("#" ^ name) got
end

(* FNV-1a over the bytes, for content-hash binding of snapshots to the
   program and configuration they were taken under. *)
let fnv1a64 s =
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001B3L)
    s;
  !h

let hash_hex s = Printf.sprintf "%016Lx" (fnv1a64 s)
