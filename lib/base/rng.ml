type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create seed = { state = mix (Int64.of_int seed) }

let next t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t = { state = next t }
let copy t = { state = t.state }
let state t = t.state
let set_state t s = t.state <- s

let derive seed i =
  let s = mix (Int64.of_int seed) in
  { state = mix (Int64.add s (Int64.mul golden_gamma (Int64.of_int (i + 1)))) }

let int t bound =
  assert (bound > 0);
  let r = Int64.to_int (next t) land max_int in
  r mod bound

let int_in t lo hi =
  assert (hi >= lo);
  lo + int t (hi - lo + 1)

let bool t = Int64.logand (next t) 1L = 1L

let float t x =
  let r = Int64.to_int (next t) land max_int in
  x *. (float_of_int r /. float_of_int max_int)

let chance t p = float t 1.0 < p

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose t a =
  assert (Array.length a > 0);
  a.(int t (Array.length a))
