let crash_after_write_hook = ref None

(* Temp names carry the pid *and* a process-wide counter: two domains of
   one process atomically writing the same path must never share a temp
   file, or the rename could publish an interleaved body. *)
let tmp_counter = Atomic.make 0

let write path f =
  let dir = Filename.dirname path in
  let tmp =
    Filename.concat dir
      (Printf.sprintf "%s.tmp.%d.%d" (Filename.basename path) (Unix.getpid ())
         (Atomic.fetch_and_add tmp_counter 1))
  in
  let oc = open_out_bin tmp in
  (try
     f oc;
     close_out oc;
     (match !crash_after_write_hook with None -> () | Some hook -> hook ())
   with e ->
     (try close_out_noerr oc with _ -> ());
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path

let write_string path s = write path (fun oc -> output_string oc s)
