(* Unified failure model: every layer of the toolchain reports errors as a
   structured diagnostic instead of a bare string, so the CLIs (and the
   differential fuzzer) can render, classify and compare failures without
   parsing exception messages. *)

type severity = Error | Warning | Note

(* Where the problem is.  Compiler-side failures point into MiniC source;
   decoder-side failures point at a byte offset within a named section of
   the binary image; simulator-side failures usually have no location. *)
type loc =
  | No_loc
  | Src of { line : int; col : int }
  | Byte of { offset : int; section : string }

type t = {
  severity : severity;
  component : string;  (** "compiler", "encode", "sim.block", "timing", ... *)
  loc : loc;
  message : string;
}

let make ?(severity = Error) ?(loc = No_loc) ~component message =
  { severity; component; loc; message }

let error ?loc ~component message = make ~severity:Error ?loc ~component message
let warning ?loc ~component message = make ~severity:Warning ?loc ~component message

let errorf ?loc ~component fmt =
  Printf.ksprintf (fun message -> error ?loc ~component message) fmt

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Note -> "note"

let loc_to_string = function
  | No_loc -> ""
  | Src { line; col } -> Printf.sprintf "%d:%d" line col
  | Byte { offset; section } -> Printf.sprintf "byte %d (%s section)" offset section

(* One line, suitable for a CLI's stderr:
   [error] compiler: 3:7: type error: operand types differ *)
let render t =
  let loc = loc_to_string t.loc in
  if loc = "" then
    Printf.sprintf "[%s] %s: %s" (severity_to_string t.severity) t.component t.message
  else
    Printf.sprintf "[%s] %s: %s: %s" (severity_to_string t.severity) t.component loc
      t.message

let to_string = render

(* Generic carrier for failures that do not have a dedicated exception;
   new code should prefer raising this over Failure/Invalid_argument. *)
exception Fail of t

let fail ?loc ~component fmt =
  Printf.ksprintf (fun message -> raise (Fail (error ?loc ~component message))) fmt

(* Byte-offset helper for decoders. *)
let at_byte ~offset ~section = Byte { offset; section }
let at_src ~line ~col = Src { line; col }
