(** Crash-safe file output: write a temp file, then rename into place.

    Every artifact the toolchain emits — compiled binaries, benchmark
    JSON, Chrome traces, experiment reports — goes through {!write}, so an
    interrupted run (Ctrl-C, OOM kill, crash mid-serialization) leaves
    either the previous file or no file, never a truncated one.  The temp
    file lives in the destination's directory (rename must not cross a
    filesystem) under a [.tmp.<pid>.<n>] suffix — the counter keeps
    concurrent writer domains of one process on distinct temp files — and
    is removed if the writer raises. *)

val write : string -> (out_channel -> unit) -> unit
(** [write path f] opens a temp file in binary mode next to [path], runs
    [f] on its channel, flushes and closes it, and renames it onto
    [path].  If [f] raises, the temp file is deleted and the exception
    rethrown; [path] is untouched. *)

val write_string : string -> string -> unit
(** [write_string path s] = [write path (fun oc -> output_string oc s)]. *)

val crash_after_write_hook : (unit -> unit) option ref
(** Test hook, run after [f] completes but before the rename — the widest
    window in which a crash must not corrupt [path].  A hook that raises
    simulates dying there; {!write} removes the temp file and re-raises.
    Always [None] in production. *)
