module Mean = struct
  type t = {
    mutable count : int;
    mutable total : float;
    mutable vmin : float;
    mutable vmax : float;
  }

  let create () = { count = 0; total = 0.0; vmin = infinity; vmax = neg_infinity }

  let add_n t v n =
    t.count <- t.count + n;
    t.total <- t.total +. (v *. float_of_int n);
    if v < t.vmin then t.vmin <- v;
    if v > t.vmax then t.vmax <- v

  let add t v = add_n t v 1
  let count t = t.count
  let total t = t.total
  let mean t = if t.count = 0 then 0.0 else t.total /. float_of_int t.count
  let min t = t.vmin
  let max t = t.vmax
end

module Histogram = struct
  type t = { counts : int array; mutable total : int }

  let create ~buckets =
    assert (buckets > 0);
    { counts = Array.make buckets 0; total = 0 }

  let clamp t v =
    if v < 0 then 0
    else if v >= Array.length t.counts then Array.length t.counts - 1
    else v

  let add t v =
    let i = clamp t v in
    t.counts.(i) <- t.counts.(i) + 1;
    t.total <- t.total + 1

  let count t v = t.counts.(clamp t v)
  let total t = t.total

  let mean t =
    if t.total = 0 then 0.0
    else begin
      let sum = ref 0 in
      Array.iteri (fun i c -> sum := !sum + (i * c)) t.counts;
      float_of_int !sum /. float_of_int t.total
    end

  let percentile t p =
    if t.total = 0 then 0
    else begin
      let target = p *. float_of_int t.total in
      let rec scan i acc =
        if i >= Array.length t.counts - 1 then i
        else
          let acc = acc + t.counts.(i) in
          if float_of_int acc >= target then i else scan (i + 1) acc
      in
      scan 0 0
    end

  let iter t f = Array.iteri (fun i c -> if c > 0 then f i c) t.counts

  let save t w =
    Codec.W.int_array w t.counts;
    Codec.W.int w t.total

  let load t r =
    let counts = Codec.R.int_array r in
    if Array.length counts <> Array.length t.counts then
      invalid_arg "Histogram.load: bucket count mismatch";
    Array.blit counts 0 t.counts 0 (Array.length counts);
    t.total <- Codec.R.int r
end

let ratio num den = if den = 0 then 0.0 else float_of_int num /. float_of_int den

let percent_change base v = 100.0 *. (v -. base) /. base

let geomean = function
  | [] -> 0.0
  | vs ->
    let n = List.length vs in
    let log_sum = List.fold_left (fun acc v -> acc +. log v) 0.0 vs in
    exp (log_sum /. float_of_int n)
