(** The block-structured ISA's next-block predictor: the Two-Level Adaptive
    Branch Predictor with the paper's three modifications (section 4.3).

    1. BTB entries are widened to hold all (up to eight) control-flow
       successors of an atomic block, indexed by a 3-bit path code; only
       the trap's two explicit targets are known a priori — the remaining
       slots fill in lazily as fault mispredictions reveal them.
    2. Each PHT entry holds three 2-bit counters: one predicting the trap
       direction and one per potential fault operation; together they form
       the 3-bit code selecting the successor.
    3. The history register shifts in only [succ_log2] bits per prediction
       (the number carried by the trap operation), so blocks with few
       successors do not waste history capacity.

    The path code of a successor [s] of block [b] is
    [dir | (variant_index << 1)] where [dir] says which trap direction's
    variant set contains [s] and [variant_index] is [s]'s position in it. *)

type config = {
  hist_bits : int;
  pht_bits : int;
  btb_sets : int;
  btb_ways : int;
  ras_depth : int;
  naive_history : bool;
      (** ablation: always shift 3 bits instead of [succ_log2] — the
          behaviour modification 3 exists to avoid *)
}

val default_config : config

type t

val create : config -> Bisa_isa.Block_prog.t -> t

val predict : t -> int -> int option
(** [predict t b]: the block the front end would fetch after [b], or
    [None] when it has no basis (empty RAS, cold indirect BTB). *)

val predict_id : t -> int -> int
(** Allocation-free [predict]: the predicted block id, or -1 when the
    predictor has no basis.  Same training side effects (RAS push/pop,
    lookup counter). *)

val predict_given_direction : t -> int -> taken:bool -> int option
(** Variant choice once the trap direction has resolved: after a
    direction-level misprediction the front end refetches not the blind
    representative but the variant the deeper counters and BTB slots point
    at within the now-known direction. *)

val update : t -> block:int -> actual:int -> unit
(** Train with the successor that actually committed.  Counters, history
    (variable shift), BTB successor slots, and RAS all update here. *)

val corrupt_btb : t -> block:int -> value:int -> unit
(** Fault-injection hook: fill all eight successor slots of [block]'s BTB
    entry with [value].  Slots are fetch hints filtered by the pipeline's
    group check, so corruption costs mispredictions only. *)

val set_btb_hook : t -> (key:int -> hit:bool -> unit) -> unit
(** Observation hook on every lookup of the three target buffers (widened
    successor BTB, region-entry BTB, indirect BTB; see {!Btb.set_hook}). *)

val lookups : t -> int

val save : t -> Bisa_base.Codec.W.t -> unit
val load : t -> Bisa_base.Codec.R.t -> unit
(** Checkpoint/restore the full predictor state (PHT, history, the three
    target buffers, RAS, counters).  Configuration and program must
    match. *)
