(** A trace cache for the conventional core (Rotenberg/Bennett/Smith 1996,
    the paper's reference [19] and its closest rival).

    Records sequences of up to [max_blocks] dynamically-consecutive basic
    blocks (at most [max_ops] operations) keyed by the first block's
    address; when the front end is about to fetch a block whose stored
    trace matches the path actually taken, the whole trace is delivered in
    one cycle from the trace cache (no icache access).  The paper's
    contrast: the trace cache combines blocks at run time into a small
    dedicated cache, block enlargement at compile time into the whole
    icache. *)

type config = {
  sets : int;
  ways : int;
  max_blocks : int;  (** paper's reference design: 3 *)
  max_ops : int;  (** the 16-wide fetch limit *)
}

val default_config : config
(** 64 sets x 4 ways of up-to-16-op, up-to-3-block traces. *)

type t

val create : config -> t

val lookup : t -> start:int -> int list option
(** [lookup t ~start] is the stored successor-block start sequence (the
    second and later blocks of the trace), if a trace starting at [start]
    is cached. *)

val fill : t -> starts:int list -> total_ops:int -> unit
(** Record a trace: [starts] is the full block-start sequence (first
    element is the key).  Oversized traces are ignored. *)

val corrupt : t -> start:int -> succs:int list -> unit
(** Fault-injection hook: plant an arbitrary (possibly bogus) trace keyed
    at [start], bypassing the size checks of {!fill}.  Safe because the
    front end validates traces against the real upcoming packets. *)

val hits : t -> int
val lookups : t -> int

val save : t -> Bisa_base.Codec.W.t -> unit
val load : t -> Bisa_base.Codec.R.t -> unit
(** Checkpoint/restore stored traces and counters.  Geometry must match. *)
