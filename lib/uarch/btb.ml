type 'a way = { mutable key : int; mutable payload : 'a option; mutable stamp : int }

let null_hook ~key:_ ~hit:_ = ()

type 'a t = {
  sets : int;
  set_mask : int;  (** [sets - 1] when [sets] is a power of two, else -1 *)
  ways : 'a way array array;
  mutable tick : int;
  mutable hook : key:int -> hit:bool -> unit;
}

let create ~sets ~ways =
  assert (sets > 0 && ways > 0);
  {
    sets;
    set_mask = (if sets land (sets - 1) = 0 then sets - 1 else -1);
    ways =
      Array.init sets (fun _ ->
          Array.init ways (fun _ -> { key = -1; payload = None; stamp = 0 }));
    tick = 0;
    hook = null_hook;
  }

let set_hook t h = t.hook <- h

let set_of t key =
  t.ways.(if t.set_mask >= 0 then key land t.set_mask else key mod t.sets)

(* Flat loops, no local closures: [find] is on the per-block path of the
   predictors, and classic ocamlopt would allocate a closure per call for
   a capturing local recursion. *)
let find t key =
  let set = set_of t key in
  t.tick <- t.tick + 1;
  let n = Array.length set in
  let i = ref 0 in
  while !i < n && set.(!i).key <> key do
    incr i
  done;
  let r =
    if !i < n then begin
      set.(!i).stamp <- t.tick;
      set.(!i).payload
    end
    else None
  in
  if t.hook != null_hook then
    t.hook ~key ~hit:(match r with Some _ -> true | None -> false);
  r

let insert t key payload =
  let set = set_of t key in
  t.tick <- t.tick + 1;
  let n = Array.length set in
  let i = ref 0 in
  while !i < n && set.(!i).key <> key do
    incr i
  done;
  let slot =
    if !i < n then set.(!i)
    else begin
      let victim = ref set.(0) in
      for j = 1 to n - 1 do
        if set.(j).stamp < !victim.stamp then victim := set.(j)
      done;
      !victim
    end
  in
  slot.key <- key;
  slot.payload <- Some payload;
  slot.stamp <- t.tick

let find_or_insert t key make =
  match find t key with
  | Some p -> p
  | None ->
    let p = make () in
    insert t key p;
    p

let entries t =
  Array.fold_left
    (fun acc set ->
      acc + Array.fold_left (fun a w -> if w.payload <> None then a + 1 else a) 0 set)
    0 t.ways

(* Checkpointing.  Ways are serialized in set/way order; the payload codec
   is supplied by the owner (payloads are arbitrary).  Hooks are not
   serialized — the owner reattaches them after [load]. *)
let save pay t w =
  Bisa_base.Codec.W.section w "btb";
  Bisa_base.Codec.W.int w t.sets;
  Bisa_base.Codec.W.int w (Array.length t.ways.(0));
  Bisa_base.Codec.W.int w t.tick;
  Array.iter
    (fun set ->
      Array.iter
        (fun way ->
          Bisa_base.Codec.W.int w way.key;
          Bisa_base.Codec.W.int w way.stamp;
          Bisa_base.Codec.W.option w pay way.payload)
        set)
    t.ways

let load pay t r =
  Bisa_base.Codec.R.section r "btb";
  let sets = Bisa_base.Codec.R.int r in
  let ways = Bisa_base.Codec.R.int r in
  if sets <> t.sets || ways <> Array.length t.ways.(0) then
    invalid_arg "Btb.load: geometry mismatch";
  t.tick <- Bisa_base.Codec.R.int r;
  Array.iter
    (fun set ->
      Array.iter
        (fun way ->
          way.key <- Bisa_base.Codec.R.int r;
          way.stamp <- Bisa_base.Codec.R.int r;
          way.payload <- Bisa_base.Codec.R.option r pay)
        set)
    t.ways
