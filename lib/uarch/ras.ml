type t = { slots : int array; mutable top : int; mutable count : int }

let create ~depth =
  assert (depth > 0);
  { slots = Array.make depth 0; top = 0; count = 0 }

let push t v =
  t.slots.(t.top) <- v;
  t.top <- (t.top + 1) mod Array.length t.slots;
  if t.count < Array.length t.slots then t.count <- t.count + 1

(* Int-returning core: -1 = empty.  Return targets are block ids (>= 0),
   so the sentinel is unambiguous; the predictor's hot path uses this to
   avoid allocating an option per return. *)
let pop_id t =
  if t.count = 0 then -1
  else begin
    t.top <- (t.top + Array.length t.slots - 1) mod Array.length t.slots;
    t.count <- t.count - 1;
    t.slots.(t.top)
  end

let pop t =
  let v = pop_id t in
  if v < 0 then None else Some v

let depth t = Array.length t.slots
let occupancy t = t.count

let save t w =
  Bisa_base.Codec.W.section w "ras";
  Bisa_base.Codec.W.int_array w t.slots;
  Bisa_base.Codec.W.int w t.top;
  Bisa_base.Codec.W.int w t.count

let load t r =
  Bisa_base.Codec.R.section r "ras";
  let slots = Bisa_base.Codec.R.int_array r in
  if Array.length slots <> Array.length t.slots then
    invalid_arg "Ras.load: depth mismatch";
  Array.blit slots 0 t.slots 0 (Array.length slots);
  t.top <- Bisa_base.Codec.R.int r;
  t.count <- Bisa_base.Codec.R.int r
