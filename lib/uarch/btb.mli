(** Generic set-associative branch-target buffer with LRU replacement.

    Keys are instruction indexes (conventional) or block ids
    (block-structured); the payload is whatever the predictor stores per
    entry — a single target, or the widened 8-successor entry the paper's
    modification 1 calls for. *)

type 'a t

val create : sets:int -> ways:int -> 'a t
val find : 'a t -> int -> 'a option
(** Refreshes LRU on hit. *)

val insert : 'a t -> int -> 'a -> unit
(** Insert or overwrite; evicts LRU on conflict. *)

val find_or_insert : 'a t -> int -> (unit -> 'a) -> 'a
val entries : 'a t -> int

val set_hook : 'a t -> (key:int -> hit:bool -> unit) -> unit
(** Observation hook called on every {!find} with the key and whether it
    hit.  Purely observational; the default hook is free (skipped by a
    physical-equality check). *)

val save : (Bisa_base.Codec.W.t -> 'a -> unit) -> 'a t -> Bisa_base.Codec.W.t -> unit
val load : (Bisa_base.Codec.R.t -> 'a) -> 'a t -> Bisa_base.Codec.R.t -> unit
(** Checkpoint/restore entries and LRU stamps with a caller-supplied
    payload codec.  Geometry must match; hooks are left untouched. *)
