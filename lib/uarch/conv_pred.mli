(** Branch predictor for the conventional core: a Two-Level Adaptive
    predictor (global history register xor-indexing a pattern history table
    of 2-bit counters, the GAs/gshare organization of Yeh & Patt), plus a
    branch target buffer for taken-branch and indirect targets and a
    return-address stack.

    Trace-driven interface: each control instruction reports its outcome
    and the predictor returns whether the front end would have fetched the
    right successor, updating itself immediately. *)

type config = {
  hist_bits : int;
  pht_bits : int;
  btb_sets : int;
  btb_ways : int;
  ras_depth : int;
}

val default_config : config

type t

type verdict = Correct | Wrong_direction | Wrong_target | Ras_miss

val create : config -> t

val on_branch : t -> pc:int -> taken:bool -> target:int -> verdict
(** Conditional compare-and-branch: direction from the PHT, target from
    the BTB when predicted taken. *)

val on_jump : t -> pc:int -> target:int -> verdict
(** Unconditional direct jump: target decodable, always correct. *)

val on_call : t -> pc:int -> target:int -> return_to:int -> verdict
val on_return : t -> pc:int -> target:int -> verdict
val on_indirect : t -> pc:int -> target:int -> verdict

val inject_btb : t -> pc:int -> target:int -> unit
(** Fault-injection hook: overwrite [pc]'s BTB entry with a bogus target.
    Targets are hints (compared, never dereferenced), so the worst case is
    an extra [Wrong_target] misprediction. *)

val set_btb_hook : t -> (key:int -> hit:bool -> unit) -> unit
(** Observation hook on every BTB lookup (see {!Btb.set_hook}). *)

val mispredicts : t -> int
val predictions : t -> int

val save : t -> Bisa_base.Codec.W.t -> unit
val load : t -> Bisa_base.Codec.R.t -> unit
(** Checkpoint/restore the full predictor state (PHT, history, BTB, RAS,
    counters).  Configuration must match. *)
