type config = {
  hist_bits : int;
  pht_bits : int;
  btb_sets : int;
  btb_ways : int;
  ras_depth : int;
}

let default_config =
  { hist_bits = 14; pht_bits = 14; btb_sets = 512; btb_ways = 4; ras_depth = 32 }

type t = {
  cfg : config;
  pht : Bytes.t;  (** 2-bit counters *)
  mutable hist : int;
  btb : int Btb.t;  (** pc -> last target *)
  ras : Ras.t;
  mutable n_pred : int;
  mutable n_miss : int;
}

type verdict = Correct | Wrong_direction | Wrong_target | Ras_miss

let create cfg =
  {
    cfg;
    pht = Bytes.make (1 lsl cfg.pht_bits) '\001';
    (* weakly not-taken *)
    hist = 0;
    btb = Btb.create ~sets:cfg.btb_sets ~ways:cfg.btb_ways;
    ras = Ras.create ~depth:cfg.ras_depth;
    n_pred = 0;
    n_miss = 0;
  }

let pht_index t pc =
  (pc * 0x9E3779B1 lxor t.hist) land ((1 lsl t.cfg.pht_bits) - 1)

let counter t i = Char.code (Bytes.get t.pht i)

let train t i taken =
  let c = counter t i in
  let c' = if taken then min 3 (c + 1) else max 0 (c - 1) in
  Bytes.set t.pht i (Char.chr c')

let note t ok =
  t.n_pred <- t.n_pred + 1;
  if not ok then t.n_miss <- t.n_miss + 1

let on_branch t ~pc ~taken ~target =
  let i = pht_index t pc in
  let pred_taken = counter t i >= 2 in
  let verdict =
    if pred_taken <> taken then Wrong_direction
    else if taken then begin
      match Btb.find t.btb pc with
      | Some tgt when tgt = target -> Correct
      | _ -> Wrong_target
    end
    else Correct
  in
  train t i taken;
  if taken then Btb.insert t.btb pc target;
  t.hist <- ((t.hist lsl 1) lor if taken then 1 else 0) land ((1 lsl t.cfg.hist_bits) - 1);
  note t (verdict = Correct);
  verdict

let on_jump t ~pc ~target =
  ignore pc;
  ignore target;
  note t true;
  Correct

let on_call t ~pc ~target ~return_to =
  ignore pc;
  ignore target;
  Ras.push t.ras return_to;
  note t true;
  Correct

let on_return t ~pc ~target =
  ignore pc;
  let verdict =
    match Ras.pop t.ras with
    | Some v when v = target -> Correct
    | Some _ -> Ras_miss
    | None -> Ras_miss
  in
  note t (verdict = Correct);
  verdict

let on_indirect t ~pc ~target =
  let verdict =
    match Btb.find t.btb pc with
    | Some tgt when tgt = target -> Correct
    | _ -> Wrong_target
  in
  Btb.insert t.btb pc target;
  note t (verdict = Correct);
  verdict

(* Fault-injection hook: plant a bogus target.  BTB contents are only ever
   compared against the architectural target, never fetched from, so a
   corrupt entry costs at most a Wrong_target redirect. *)
let inject_btb t ~pc ~target = Btb.insert t.btb pc target
let set_btb_hook t h = Btb.set_hook t.btb h

let mispredicts t = t.n_miss
let predictions t = t.n_pred

let save t w =
  Bisa_base.Codec.W.section w "conv_pred";
  Bisa_base.Codec.W.bytes w t.pht;
  Bisa_base.Codec.W.int w t.hist;
  Btb.save Bisa_base.Codec.W.int t.btb w;
  Ras.save t.ras w;
  Bisa_base.Codec.W.int w t.n_pred;
  Bisa_base.Codec.W.int w t.n_miss

let load t r =
  Bisa_base.Codec.R.section r "conv_pred";
  let pht = Bisa_base.Codec.R.bytes r in
  if Bytes.length pht <> Bytes.length t.pht then
    invalid_arg "Conv_pred.load: PHT size mismatch";
  Bytes.blit pht 0 t.pht 0 (Bytes.length pht);
  t.hist <- Bisa_base.Codec.R.int r;
  Btb.load Bisa_base.Codec.R.int t.btb r;
  Ras.load t.ras r;
  t.n_pred <- Bisa_base.Codec.R.int r;
  t.n_miss <- Bisa_base.Codec.R.int r
