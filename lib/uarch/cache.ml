type config = { size_bytes : int; assoc : int; line_bytes : int }

let kb n = n * 1024
let config_16k = { size_bytes = kb 16; assoc = 4; line_bytes = 32 }
let config_32k = { size_bytes = kb 32; assoc = 4; line_bytes = 32 }
let config_64k = { size_bytes = kb 64; assoc = 4; line_bytes = 32 }

let null_hook ~addr:_ ~hit:_ = ()

type t = {
  cfg : config;
  sets : int;
  line_shift : int;
  (* All standard geometries have a power-of-two set count, for which
     set/tag extraction is a mask and a shift instead of an integer
     division; [set_shift = -1] falls back to mod/div. *)
  set_mask : int;
  set_shift : int;
  tags : int array;  (** sets * assoc; -1 = invalid *)
  lru : int array;  (** larger = more recently used *)
  mutable tick : int;
  mutable n_access : int;
  mutable n_miss : int;
  mutable hook : addr:int -> hit:bool -> unit;
}

let log2i n =
  let rec go k = if 1 lsl k >= n then k else go (k + 1) in
  go 0

let create cfg =
  if cfg.size_bytes mod (cfg.assoc * cfg.line_bytes) <> 0 then
    invalid_arg "Cache.create: size not divisible by assoc*line";
  let sets = cfg.size_bytes / (cfg.assoc * cfg.line_bytes) in
  let pow2 = sets land (sets - 1) = 0 in
  {
    cfg;
    sets;
    line_shift = log2i cfg.line_bytes;
    set_mask = (if pow2 then sets - 1 else 0);
    set_shift = (if pow2 then log2i sets else -1);
    tags = Array.make (sets * cfg.assoc) (-1);
    lru = Array.make (sets * cfg.assoc) 0;
    tick = 0;
    n_access = 0;
    n_miss = 0;
    hook = null_hook;
  }

let set_hook t h = t.hook <- h

let access t addr =
  let line = addr lsr t.line_shift in
  let set = if t.set_shift >= 0 then line land t.set_mask else line mod t.sets in
  let tag = if t.set_shift >= 0 then line lsr t.set_shift else line / t.sets in
  let base = set * t.cfg.assoc in
  let assoc = t.cfg.assoc in
  t.n_access <- t.n_access + 1;
  t.tick <- t.tick + 1;
  (* Flat way scan — a capturing local recursion would allocate a closure
     per access under classic ocamlopt, and this is the hottest uarch
     component call. *)
  let i = ref 0 in
  while !i < assoc && t.tags.(base + !i) <> tag do
    incr i
  done;
  let hit =
    if !i < assoc then begin
      t.lru.(base + !i) <- t.tick;
      true
    end
    else begin
      t.n_miss <- t.n_miss + 1;
      (* Evict the least recently used way. *)
      let victim = ref 0 in
      for i = 1 to assoc - 1 do
        if t.lru.(base + i) < t.lru.(base + !victim) then victim := i
      done;
      t.tags.(base + !victim) <- tag;
      t.lru.(base + !victim) <- t.tick;
      false
    end
  in
  if t.hook != null_hook then t.hook ~addr ~hit;
  hit

let access_range t addr len =
  assert (len >= 0);
  let first = addr lsr t.line_shift in
  let last = (addr + max 0 (len - 1)) lsr t.line_shift in
  let misses = ref 0 in
  for line = first to last do
    if not (access t (line lsl t.line_shift)) then incr misses
  done;
  !misses

let evict t addr =
  let line = addr lsr t.line_shift in
  let set = if t.set_shift >= 0 then line land t.set_mask else line mod t.sets in
  let tag = if t.set_shift >= 0 then line lsr t.set_shift else line / t.sets in
  let base = set * t.cfg.assoc in
  for i = 0 to t.cfg.assoc - 1 do
    if t.tags.(base + i) = tag then begin
      t.tags.(base + i) <- -1;
      t.lru.(base + i) <- 0
    end
  done

let accesses t = t.n_access
let misses t = t.n_miss

let reset_stats t =
  t.n_access <- 0;
  t.n_miss <- 0

let lines t = t.sets * t.cfg.assoc

(* Checkpointing: tags, LRU stamps, and counters.  The hook is not
   serialized — the owner reattaches it after [load]. *)
let save t w =
  Bisa_base.Codec.W.section w "cache";
  Bisa_base.Codec.W.int w (Array.length t.tags);
  Bisa_base.Codec.W.int_array w t.tags;
  Bisa_base.Codec.W.int_array w t.lru;
  Bisa_base.Codec.W.int w t.tick;
  Bisa_base.Codec.W.int w t.n_access;
  Bisa_base.Codec.W.int w t.n_miss

let load t r =
  Bisa_base.Codec.R.section r "cache";
  let n = Bisa_base.Codec.R.int r in
  if n <> Array.length t.tags then invalid_arg "Cache.load: geometry mismatch";
  let tags = Bisa_base.Codec.R.int_array r in
  let lru = Bisa_base.Codec.R.int_array r in
  Array.blit tags 0 t.tags 0 n;
  Array.blit lru 0 t.lru 0 n;
  t.tick <- Bisa_base.Codec.R.int r;
  t.n_access <- Bisa_base.Codec.R.int r;
  t.n_miss <- Bisa_base.Codec.R.int r
