(** Fault injection into the speculative front-end structures.

    The hooks model transient faults (and adversarial aliasing) in the
    predictor, BTB, icache and trace cache.  They may only touch state
    whose contents are {e hints}: the pipelines re-check every hint against
    the functional executor, so an injection degrades a run to extra
    mispredictions, refetches and cache misses — outputs and memory side
    effects are unchanged, and the executor budgets still bound the run.
    [lib/check]'s fault campaign asserts both properties. *)

type t

val create :
  ?p_flip_direction:float ->
  ?p_evict_line:float ->
  ?p_corrupt_btb:float ->
  ?p_corrupt_trace:float ->
  seed:int ->
  unit ->
  t
(** All probabilities default to 0 (that event class never fires). *)

val chaos : seed:int -> t
(** Preset with every probability at 5% — the robustness-campaign knob. *)

val flip_direction : t -> bool
(** Roll: force this prediction to be treated as a misprediction. *)

val evict_line : t -> bool
(** Roll: evict the just-fetched icache line. *)

val corrupt_btb : t -> bool
(** Roll: overwrite a BTB entry with a bogus successor. *)

val corrupt_trace : t -> bool
(** Roll: install a bogus trace-cache entry. *)

val rand_int : t -> int -> int
(** Deterministic junk value in \[0, bound) (0 if [bound <= 0]). *)

val injected : t -> int
(** How many injections have fired so far. *)

val save : t -> Bisa_base.Codec.W.t -> unit
val load : t -> Bisa_base.Codec.R.t -> unit
(** Checkpoint/restore the generator state and counter, so a resumed run
    rolls the same injections as an uninterrupted one. *)
