(* Fault-injection harness for the timing front ends.

   Every hook corrupts *speculative* microarchitectural state only —
   predictor counters, BTB successor slots, cache tags, trace-cache
   entries.  Architectural state is owned by the functional executors, so
   by construction an injection can change cycle counts but never outputs;
   the differential fuzzer (lib/check) asserts exactly that. *)

type t = {
  rng : Bisa_base.Rng.t;
  p_flip_direction : float;
  p_evict_line : float;
  p_corrupt_btb : float;
  p_corrupt_trace : float;
  mutable n_fired : int;
}

let create ?(p_flip_direction = 0.0) ?(p_evict_line = 0.0) ?(p_corrupt_btb = 0.0)
    ?(p_corrupt_trace = 0.0) ~seed () =
  {
    rng = Bisa_base.Rng.create seed;
    p_flip_direction;
    p_evict_line;
    p_corrupt_btb;
    p_corrupt_trace;
    n_fired = 0;
  }

(* An aggressive preset for robustness campaigns: every event class fires
   often enough that a few-thousand-op program sees dozens of each. *)
let chaos ~seed =
  create ~p_flip_direction:0.05 ~p_evict_line:0.05 ~p_corrupt_btb:0.05
    ~p_corrupt_trace:0.05 ~seed ()

let fire t p =
  p > 0.0
  && Bisa_base.Rng.chance t.rng p
  &&
  (t.n_fired <- t.n_fired + 1;
   true)

let flip_direction t = fire t t.p_flip_direction
let evict_line t = fire t t.p_evict_line
let corrupt_btb t = fire t t.p_corrupt_btb
let corrupt_trace t = fire t t.p_corrupt_trace
let rand_int t bound = if bound <= 0 then 0 else Bisa_base.Rng.int t.rng bound
let injected t = t.n_fired

let save t w =
  Bisa_base.Codec.W.section w "inject";
  Bisa_base.Codec.W.i64 w (Bisa_base.Rng.state t.rng);
  Bisa_base.Codec.W.int w t.n_fired

let load t r =
  Bisa_base.Codec.R.section r "inject";
  Bisa_base.Rng.set_state t.rng (Bisa_base.Codec.R.i64 r);
  t.n_fired <- Bisa_base.Codec.R.int r
