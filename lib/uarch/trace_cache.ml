type config = { sets : int; ways : int; max_blocks : int; max_ops : int }

let default_config = { sets = 64; ways = 4; max_blocks = 3; max_ops = 16 }

type t = {
  cfg : config;
  table : int list Btb.t;  (** key: first block start; payload: successor starts *)
  mutable n_lookup : int;
  mutable n_hit : int;
}

let create cfg = { cfg; table = Btb.create ~sets:cfg.sets ~ways:cfg.ways; n_lookup = 0; n_hit = 0 }

let lookup t ~start =
  t.n_lookup <- t.n_lookup + 1;
  match Btb.find t.table start with
  | Some succ ->
    t.n_hit <- t.n_hit + 1;
    Some succ
  | None -> None

let fill t ~starts ~total_ops =
  match starts with
  | first :: rest
    when rest <> []
         && List.length starts <= t.cfg.max_blocks
         && total_ops <= t.cfg.max_ops ->
    Btb.insert t.table first rest
  | _ -> ()

(* Fault-injection hook: install an arbitrary trace unconditionally.  The
   pipeline confirms every stored trace against the packets actually coming
   next before serving it, so a corrupt entry is simply never confirmed. *)
let corrupt t ~start ~succs = Btb.insert t.table start succs

let hits t = t.n_hit
let lookups t = t.n_lookup

let starts_save w l =
  Bisa_base.Codec.W.int w (List.length l);
  List.iter (Bisa_base.Codec.W.int w) l

let starts_load r =
  let n = Bisa_base.Codec.R.int r in
  List.init n (fun _ -> Bisa_base.Codec.R.int r)

let save t w =
  Bisa_base.Codec.W.section w "trace_cache";
  Btb.save starts_save t.table w;
  Bisa_base.Codec.W.int w t.n_lookup;
  Bisa_base.Codec.W.int w t.n_hit

let load t r =
  Bisa_base.Codec.R.section r "trace_cache";
  Btb.load starts_load t.table r;
  t.n_lookup <- Bisa_base.Codec.R.int r;
  t.n_hit <- Bisa_base.Codec.R.int r
