module Block_prog = Bisa_isa.Block_prog
module Ablock = Bisa_isa.Ablock

type config = {
  hist_bits : int;
  pht_bits : int;
  btb_sets : int;
  btb_ways : int;
  ras_depth : int;
  naive_history : bool;
}

let default_config =
  {
    hist_bits = 14;
    pht_bits = 14;
    btb_sets = 512;
    btb_ways = 4;
    ras_depth = 32;
    naive_history = false;
  }

(* A widened BTB entry: one successor slot per 3-bit path code. *)
type entry = { slots : int array (* -1 = empty *) }

(* PHT entries hold a small tree of 2-bit counters, one per decision-tree
   node: node 0 predicts the trap direction, nodes 1-2 the second decision
   (one per first-decision outcome), nodes 3-6 the third.  This is the
   natural reading of the paper's "additional counters to predict the fault
   operations": each deeper decision gets its own state, so training on the
   taken-direction side never corrupts the other side's counters. *)
let counters_per_entry = 7

type t = {
  cfg : config;
  prog : Block_prog.t;
  pht : Bytes.t;
  mutable hist : int;
  btb : entry Btb.t;
  rbtb : entry Btb.t;
      (** region-entry variant slots, keyed by the target region's
          representative — shared by every call site / return into it *)
  ibtb : int Btb.t;  (** indirect-jump last-target *)
  ras : Ras.t;
  mutable n_lookup : int;
}

let create cfg prog =
  {
    cfg;
    prog;
    pht = Bytes.make (counters_per_entry * (1 lsl cfg.pht_bits)) '\001';
    hist = 0;
    btb = Btb.create ~sets:cfg.btb_sets ~ways:cfg.btb_ways;
    rbtb = Btb.create ~sets:cfg.btb_sets ~ways:cfg.btb_ways;
    ibtb = Btb.create ~sets:cfg.btb_sets ~ways:cfg.btb_ways;
    ras = Ras.create ~depth:cfg.ras_depth;
    n_lookup = 0;
  }

let pht_index t b = (b * 0x9E3779B1 lxor t.hist) land ((1 lsl t.cfg.pht_bits) - 1)

(* Smallest [b] with [1 lsl b >= k]. *)
let bits_for k =
  let b = ref 0 in
  while 1 lsl !b < k do
    incr b
  done;
  !b

let counter t i k = Char.code (Bytes.get t.pht ((counters_per_entry * i) + k))

let train t i k up =
  let c = counter t i k in
  let c' = if up then min 3 (c + 1) else max 0 (c - 1) in
  Bytes.set t.pht ((counters_per_entry * i) + k) (Char.chr c')

(* Variant-index prediction within one direction's list, walking the
   counter tree below the direction node. *)
let predict_sub t i ~dir ~n =
  if n <= 1 then 0
  else begin
    let b1 = if counter t i (1 + dir) >= 2 then 1 else 0 in
    if n <= 2 then b1
    else begin
      let b2 = if counter t i (3 + (dir * 2) + b1) >= 2 then 1 else 0 in
      min (n - 1) (b1 lor (b2 lsl 1))
    end
  end

let train_sub t i ~dir ~n ~sub =
  if n > 1 then begin
    let b1 = sub land 1 in
    train t i (1 + dir) (b1 = 1);
    if n > 2 then train t i (3 + (dir * 2) + b1) (sub land 2 = 2)
  end

(* Index of [v] in [arr], or -1.  A flat loop: this sits on the per-block
   training path, where a capturing local recursion would cost a closure
   allocation per call under classic ocamlopt. *)
let index_in arr v =
  let n = Array.length arr in
  let i = ref 0 in
  while !i < n && Array.unsafe_get arr !i <> v do
    incr i
  done;
  if !i < n then !i else -1

(* Successor path code packed as [dir lor (sub lsl 1)], or -1 when
   [actual] is in neither successor set (only possible around halt). *)
let encode t b actual =
  let dir1, dir0 = t.prog.succ_struct.(b) in
  let i1 = index_in dir1 actual in
  if i1 >= 0 then 1 lor ((i1 land 3) lsl 1)
  else begin
    let i0 = index_in dir0 actual in
    if i0 >= 0 then (i0 land 3) lsl 1 else -1
  end

let code_of dir sub = (dir land 1) lor (sub lsl 1)

(* How many history bits a prediction of [b]'s successor consumes: the
   trap carries it explicitly; other terminators derive it from their
   successor-set size. *)
let shift_bits t b =
  if t.cfg.naive_history then 3
  else begin
    match t.prog.blocks.(b).Ablock.term with
    | Ablock.Trap { succ_log2; _ } -> succ_log2
    | Ablock.Goto _ ->
      let dir1, _ = t.prog.succ_struct.(b) in
      let n = Array.length dir1 in
      if n <= 1 then 0 else min 3 (bits_for n)
    | Ablock.Call _ | Ablock.Return | Ablock.Ijump _ | Ablock.Halt -> 0
  end

(* BTB slot if filled, otherwise the best static fallback for the
   direction. *)
let slot_or t b ~dir ~sub ~fallback =
  match Btb.find t.btb b with
  | Some e ->
    let s = e.slots.(code_of dir sub) in
    if s >= 0 then s
    else begin
      let s0 = e.slots.(code_of dir 0) in
      if s0 >= 0 then s0 else fallback
    end
  | None -> fallback

(* Int-returning core (-1 = no basis): the timing pipelines store the
   prediction in a scalar field, so the hot path never allocates an
   option per committed block. *)
let variant_id_for_direction t b ~dir =
  let dir1, dir0 = t.prog.succ_struct.(b) in
  let arr = if dir = 1 then dir1 else dir0 in
  let n = Array.length arr in
  if n = 0 then -1
  else begin
    let i = pht_index t b in
    let sub = predict_sub t i ~dir ~n in
    slot_or t b ~dir ~sub ~fallback:arr.(0)
  end

let variant_for_direction t b ~dir =
  let v = variant_id_for_direction t b ~dir in
  if v < 0 then None else Some v

(* Variant selection when the target {e region} is known but reached
   indirectly (call entry, RAS-predicted return).  State is keyed by the
   region's representative, not the jumping block: one return instruction
   serves many call sites, and per-region state keeps the variant counters
   and BTB slots coherent. *)
let region_pht_index t rep =
  (rep * 0x85EBCA6B lxor t.hist) land ((1 lsl t.cfg.pht_bits) - 1)

let variant_in_group t ~rep =
  let group = t.prog.variant_group.(rep) in
  let n = Array.length group in
  if n <= 1 then rep
  else begin
    let i = region_pht_index t rep in
    let sub = predict_sub t i ~dir:1 ~n in
    let fallback = group.(min sub (n - 1)) in
    let candidate =
      match Btb.find t.rbtb rep with
      | Some e ->
        let s = e.slots.(code_of 1 sub) in
        if s >= 0 then s else fallback
      | None -> fallback
    in
    if index_in group candidate >= 0 then candidate else fallback
  end

let predict_id t b =
  t.n_lookup <- t.n_lookup + 1;
  match t.prog.blocks.(b).Ablock.term with
  | Ablock.Trap _ ->
    let i = pht_index t b in
    let dir = if counter t i 0 >= 2 then 1 else 0 in
    variant_id_for_direction t b ~dir
  | Ablock.Goto _ -> variant_id_for_direction t b ~dir:1
  | Ablock.Call { callee; ret_to } ->
    Ras.push t.ras ret_to;
    variant_in_group t ~rep:callee
  | Ablock.Return ->
    let rep = Ras.pop_id t.ras in
    if rep < 0 then -1 else variant_in_group t ~rep
  | Ablock.Ijump _ -> begin
    match Btb.find t.ibtb b with Some v -> v | None -> -1
  end
  | Ablock.Halt -> -1

let predict t b =
  let v = predict_id t b in
  if v < 0 then None else Some v

let predict_given_direction t b ~taken =
  variant_for_direction t b ~dir:(if taken then 1 else 0)

let update t ~block ~actual =
  match t.prog.blocks.(block).Ablock.term with
  | Ablock.Trap _ | Ablock.Goto _ ->
    let code = encode t block actual in
    if code >= 0 then begin
      let dir = code land 1 and sub = code lsr 1 in
      let dir1, dir0 = t.prog.succ_struct.(block) in
      let n = Array.length (if dir = 1 then dir1 else dir0) in
      let i = pht_index t block in
      (match t.prog.blocks.(block).Ablock.term with
      | Ablock.Trap _ -> train t i 0 (dir = 1)
      | _ -> ());
      train_sub t i ~dir ~n ~sub;
      let e = Btb.find_or_insert t.btb block (fun () -> { slots = Array.make 8 (-1) }) in
      e.slots.(code_of dir sub) <- actual;
      let bits = shift_bits t block in
      if bits > 0 then begin
        (* Shift in the informative outcome bits: for a trap the direction
           bit plus as many variant bits as fit; for a goto (no direction
           decision) the variant bits themselves. *)
        let code =
          match t.prog.blocks.(block).Ablock.term with
          | Ablock.Trap _ -> code_of dir sub
          | _ -> sub
        in
        t.hist <-
          ((t.hist lsl bits) lor (code land ((1 lsl bits) - 1)))
          land ((1 lsl t.cfg.hist_bits) - 1)
      end
    end
    (* code < 0: the committed successor is not in the static successor
       sets; only possible around halt — nothing to learn. *)
  | Ablock.Ijump _ -> Btb.insert t.ibtb block actual
  | Ablock.Call _ | Ablock.Return ->
    (* Learn which variant of the target region was entered; state is
       per-region (the group's representative). *)
    let group = t.prog.variant_group.(actual) in
    let n = Array.length group in
    if n > 1 then begin
      let rep = group.(0) in
      let sub = index_in group actual in
      if sub >= 0 then begin
        let sub = sub land 3 in
        let i = region_pht_index t rep in
        train_sub t i ~dir:1 ~n ~sub;
        let e =
          Btb.find_or_insert t.rbtb rep (fun () -> { slots = Array.make 8 (-1) })
        in
        e.slots.(code_of 1 sub) <- actual;
        (* The entered variant encodes real branch outcomes; they belong in
           the history register like any other decision (modification 3:
           shift the minimum number of bits that identifies it). *)
        if not t.cfg.naive_history then begin
          let nbits = min 2 (bits_for n) in
          if nbits > 0 then
            t.hist <-
              ((t.hist lsl nbits) lor (sub land ((1 lsl nbits) - 1)))
              land ((1 lsl t.cfg.hist_bits) - 1)
        end
      end
    end
  | Ablock.Halt -> ()

(* Fault-injection hook: smash every successor slot of [block]'s widened
   BTB entry.  Slot contents are speculation hints — the pipeline's fetch
   guard re-checks them against the executor's required group — so a
   corrupt slot degrades to a misprediction, never a wrong execution. *)
let corrupt_btb t ~block ~value =
  let e = Btb.find_or_insert t.btb block (fun () -> { slots = Array.make 8 (-1) }) in
  Array.fill e.slots 0 (Array.length e.slots) value

let set_btb_hook t h =
  Btb.set_hook t.btb h;
  Btb.set_hook t.rbtb h;
  Btb.set_hook t.ibtb h

let lookups t = t.n_lookup

(* Checkpointing.  Widened entries serialize as their slot arrays; the
   program itself is bound by the snapshot header, not re-serialized. *)
let entry_save w e = Bisa_base.Codec.W.int_array w e.slots
let entry_load r = { slots = Bisa_base.Codec.R.int_array r }

let save t w =
  Bisa_base.Codec.W.section w "block_pred";
  Bisa_base.Codec.W.bytes w t.pht;
  Bisa_base.Codec.W.int w t.hist;
  Btb.save entry_save t.btb w;
  Btb.save entry_save t.rbtb w;
  Btb.save Bisa_base.Codec.W.int t.ibtb w;
  Ras.save t.ras w;
  Bisa_base.Codec.W.int w t.n_lookup

let load t r =
  Bisa_base.Codec.R.section r "block_pred";
  let pht = Bisa_base.Codec.R.bytes r in
  if Bytes.length pht <> Bytes.length t.pht then
    invalid_arg "Block_pred.load: PHT size mismatch";
  Bytes.blit pht 0 t.pht 0 (Bytes.length pht);
  t.hist <- Bisa_base.Codec.R.int r;
  Btb.load entry_load t.btb r;
  Btb.load entry_load t.rbtb r;
  Btb.load Bisa_base.Codec.R.int t.ibtb r;
  Ras.load t.ras r;
  t.n_lookup <- Bisa_base.Codec.R.int r
