(** Return-address stack: a fixed-depth circular predictor for return
    targets (overflow silently wraps, as in real hardware). *)

type t

val create : depth:int -> t
val push : t -> int -> unit
val pop : t -> int option
(** [None] when empty (predict nothing; counts as a mispredict). *)

val pop_id : t -> int
(** Allocation-free [pop]: the popped target, or -1 when empty. *)

val depth : t -> int
val occupancy : t -> int

val save : t -> Bisa_base.Codec.W.t -> unit
val load : t -> Bisa_base.Codec.R.t -> unit
(** Checkpoint/restore the stack contents.  Depth must match. *)
