(** Set-associative cache model with LRU replacement.

    Models tags only (contents live in the simulated memory); used for both
    the instruction cache (whose size the paper sweeps in figures 6 and 7)
    and the 16KB L1 data cache. *)

type config = { size_bytes : int; assoc : int; line_bytes : int }

val kb : int -> int
(** [kb n] = n * 1024. *)

val config_16k : config
val config_32k : config
val config_64k : config
(** The paper's icache points: 16/32/64KB, 4-way, 32-byte lines. *)

type t

val create : config -> t
val access : t -> int -> bool
(** [access t addr] touches the line containing [addr]; true on hit.
    Allocates on miss. *)

val access_range : t -> int -> int -> int
(** [access_range t addr len] touches every line of \[addr, addr+len);
    returns the number of misses. *)

val evict : t -> int -> unit
(** [evict t addr] invalidates the line containing [addr] if present —
    fault-injection hook; the next access to the line misses. *)

val accesses : t -> int
val misses : t -> int
val reset_stats : t -> unit
val lines : t -> int

val set_hook : t -> (addr:int -> hit:bool -> unit) -> unit
(** Observation hook called once per line {!access} (so its call count
    matches {!accesses} exactly).  Purely observational; the default hook
    is free (skipped by a physical-equality check). *)

val save : t -> Bisa_base.Codec.W.t -> unit
val load : t -> Bisa_base.Codec.R.t -> unit
(** Checkpoint/restore tags, LRU state and counters.  Geometry must
    match; the hook is left untouched. *)
