type compiled = {
  typed : Bisa_frontend.Typed.tprogram;
  ir : Bisa_ir.Ir.program;
  conv : Bisa_isa.Conv_prog.t;
  block : Bisa_isa.Block_prog.t;
  enlarged : Bisa_backend.Enlarge.t list;
}

exception Compile_error of Bisa_base.Diag.t

let fail ?loc msg = raise (Compile_error (Bisa_base.Diag.error ?loc ~component:"compiler" msg))

let located msg (pos : Bisa_frontend.Ast.pos) =
  fail ~loc:(Bisa_base.Diag.at_src ~line:pos.line ~col:pos.col) msg

let frontend ?spans ?(library_funcs = []) src =
  let time name f = Bisa_obs.Span.time spans name f in
  let typed =
    time "parse+typecheck" (fun () ->
        try Bisa_frontend.Typecheck.check (Bisa_frontend.Parser.parse src) with
        | Bisa_frontend.Lexer.Error (m, p) -> located ("lex error: " ^ m) p
        | Bisa_frontend.Parser.Error (m, p) -> located ("parse error: " ^ m) p
        | Bisa_frontend.Typecheck.Error (m, p) -> located ("type error: " ^ m) p)
  in
  let ir = time "lower" (fun () -> Bisa_frontend.Lower.lower ~library_funcs typed) in
  List.iter
    (fun f ->
      match Bisa_ir.Cfg.validate f with
      | Ok () -> ()
      | Error m -> fail ("internal: invalid IR: " ^ m))
    ir.funcs;
  (typed, ir)

let select_all ?spans (ir : Bisa_ir.Ir.program) ~opt ~inline ~ifconvert =
  Bisa_obs.Span.time spans "opt+isel" (fun () ->
      if inline then ignore (Bisa_opt.Inline.run ir : int);
      if ifconvert then ignore (Bisa_opt.Ifconvert.run_program ir : int);
      Bisa_opt.Pipeline.optimize opt ir;
      List.map Bisa_backend.Isel.select ir.funcs)

let compile ?spans ?(opt = Bisa_opt.Pipeline.O1)
    ?(enlarge = Bisa_backend.Enlarge.default_config) ?(inline = false)
    ?(ifconvert = false) ?(library_funcs = []) src =
  let time name f = Bisa_obs.Span.time spans name f in
  let typed, ir = frontend ?spans ~library_funcs src in
  let mfuncs = select_all ?spans ir ~opt ~inline ~ifconvert in
  let conv = time "link-conv" (fun () -> Bisa_backend.Linker.link_conventional ir.globals mfuncs) in
  let block, enlarged =
    time "link-block" (fun () ->
        Bisa_backend.Linker.link_block ~config:enlarge ir.globals mfuncs)
  in
  { typed; ir; conv; block; enlarged }

let to_machine ?(opt = Bisa_opt.Pipeline.O1) ?(inline = false) ?(ifconvert = false)
    ?(library_funcs = []) src =
  let typed, ir = frontend ~library_funcs src in
  let mfuncs = select_all ir ~opt ~inline ~ifconvert in
  (typed, ir, mfuncs)

let compile_conventional_only ?(opt = Bisa_opt.Pipeline.O1) ?(library_funcs = []) src =
  let typed, ir = frontend ~library_funcs src in
  let mfuncs = select_all ir ~opt ~inline:false ~ifconvert:false in
  (typed, Bisa_backend.Linker.link_conventional ir.globals mfuncs)
