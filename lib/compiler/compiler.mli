(** End-to-end compiler driver: MiniC source to both executables.

    Mirrors the paper's setup (section 5): one compiler front end and
    optimizer, two back-end targets — the conventional load/store ISA and
    the block-structured ISA — so any measured difference comes from
    block-structuring alone. *)

type compiled = {
  typed : Bisa_frontend.Typed.tprogram;  (** for the reference interpreter *)
  ir : Bisa_ir.Ir.program;
  conv : Bisa_isa.Conv_prog.t;
  block : Bisa_isa.Block_prog.t;
  enlarged : Bisa_backend.Enlarge.t list;  (** per-function enlargement stats *)
}

exception Compile_error of Bisa_base.Diag.t
(** All front-end failures (lex, parse, type, IR validation) are reported
    as a structured diagnostic with a source location when available. *)

val frontend :
  ?spans:Bisa_obs.Span.t ->
  ?library_funcs:string list ->
  string ->
  Bisa_frontend.Typed.tprogram * Bisa_ir.Ir.program
(** Parse, type check and lower.  Raises {!Compile_error} with a located
    message on bad input.  [spans], when given, collects per-phase
    wall-clock timings ([bisac -v] prints them). *)

val compile :
  ?spans:Bisa_obs.Span.t ->
  ?opt:Bisa_opt.Pipeline.level ->
  ?enlarge:Bisa_backend.Enlarge.config ->
  ?inline:bool ->
  ?ifconvert:bool ->
  ?library_funcs:string list ->
  string ->
  compiled
(** [compile src] builds both executables with full optimization and the
    paper's default enlargement configuration.  [inline] (default false —
    the paper's base compiler did not inline; it is the section-6
    proposal) runs {!Bisa_opt.Inline} first. *)

val to_machine :
  ?opt:Bisa_opt.Pipeline.level ->
  ?inline:bool ->
  ?ifconvert:bool ->
  ?library_funcs:string list ->
  string ->
  Bisa_frontend.Typed.tprogram * Bisa_ir.Ir.program * Bisa_backend.Mir.mfunc list
(** Stop after instruction selection — for flows that link more than once
    (e.g. profile-guided enlargement compiles, profiles, then re-links). *)

val compile_conventional_only :
  ?opt:Bisa_opt.Pipeline.level ->
  ?library_funcs:string list ->
  string ->
  Bisa_frontend.Typed.tprogram * Bisa_isa.Conv_prog.t
