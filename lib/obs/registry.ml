module Histogram = Bisa_base.Stats.Histogram

type counter = { name : string; mutable n : int }

type t = {
  by_name : (string, counter) Hashtbl.t;
  hists : (string, Histogram.t) Hashtbl.t;
}

let create () = { by_name = Hashtbl.create 32; hists = Hashtbl.create 8 }

let counter t name =
  match Hashtbl.find_opt t.by_name name with
  | Some c -> c
  | None ->
    let c = { name; n = 0 } in
    Hashtbl.add t.by_name name c;
    c

let incr c = c.n <- c.n + 1
let add c k = c.n <- c.n + k
let set c v = c.n <- v
let value c = c.n

let histogram t ?(buckets = 64) name =
  match Hashtbl.find_opt t.hists name with
  | Some h -> h
  | None ->
    let h = Histogram.create ~buckets in
    Hashtbl.add t.hists name h;
    h

let find t name = Option.map (fun c -> c.n) (Hashtbl.find_opt t.by_name name)

let counters t =
  Hashtbl.fold (fun name c acc -> (name, c.n) :: acc) t.by_name []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let histograms t =
  Hashtbl.fold (fun name h acc -> (name, h) :: acc) t.hists []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let render t =
  counters t
  |> List.map (fun (name, n) -> Printf.sprintf "%-24s %d" name n)
  |> String.concat "\n"
