(** Event recorder and exporters for the pipeline probes.

    A recorder owns a {!Probe.t} whose hooks (1) bump exact counters in a
    {!Registry.t} for every event, and (2) buffer every [sample]-th fetch
    unit's spans, redirects, squashes, and window-occupancy samples for
    export.  Counters are always exact regardless of sampling; only the
    exported event stream is thinned, so long runs stay bounded
    ([--trace-sample N] on [bisasim]).

    The Chrome exporter emits [trace_event]-format JSON (an object with a
    ["traceEvents"] array) loadable in Perfetto / [chrome://tracing]:
    fetch units become B/E span pairs laid out on reusable "window slot"
    threads, redirects and squashes become instant events on a control
    track, and window occupancy becomes a counter track.  Emission
    guarantees stable field ordering, per-thread monotonic timestamps
    (cycles as microseconds), and matched begin/end pairs — all checked
    by {!validate}, which the [@trace-smoke] alias and the golden trace
    test run on real output. *)

type t

val recorder : ?sample:int -> ?max_events:int -> unit -> t
(** [sample] (default 1) records every [sample]-th fetch unit's events
    for export; [max_events] (default 1_000_000) bounds each event class,
    further events are counted as {!dropped}. *)

val probe : t -> Probe.t
(** The probe to pass to a pipeline [run].  One recorder observes one
    run at a time; create a fresh recorder per run. *)

val registry : t -> Registry.t
(** Exact event counters, named to match {!val:Bisa_timing.Metrics}
    fields where a correspondence exists ([fetch_units], [retired_ops],
    [mispredicts], [icache_accesses], ...) plus probe-only counters
    ([predictions], [btb_lookups], [tc_lookups], ...). *)

val counts : t -> (string * int) list
(** [Registry.counters (registry t)]. *)

val dropped : t -> int
(** Events not exported because [max_events] was reached. *)

val to_chrome_json : ?process_name:string -> t -> string
val write_chrome_json : ?process_name:string -> t -> string -> unit
(** [write_chrome_json t path] writes {!to_chrome_json} to [path]. *)

val occupancy_timeline : ?width:int -> ?height:int -> t -> string
(** In-flight-ops-over-cycles ASCII chart ({!Bisa_base.Textplot.profile})
    built from the recorded occupancy samples. *)

type json_stats = {
  events : int;  (** total entries of [traceEvents] *)
  begins : int;
  ends : int;
  instants : int;
  counter_events : int;
  by_name : (string * int) list;
      (** per-name counts of begin/instant/counter events (sorted) *)
}

val validate : string -> (json_stats, string) result
(** Parse a Chrome-trace JSON string and check the exporter's contract:
    known fields in stable order, per-thread monotonic timestamps, and
    per-thread matched B/E pairs with equal names.  Returns category
    statistics on success, a one-line reason on failure. *)
