(** Wall-clock phase spans, for [bisac -v]-style phase timing.

    A collector accumulates named (phase, seconds) spans in execution
    order.  Instrumented code takes a [t option] and calls {!time}; with
    [None] the cost is one branch, so library entry points can expose
    [?spans] without a fast-path tax. *)

type t

val create : unit -> t

val time : t option -> string -> (unit -> 'a) -> 'a
(** [time spans name f] runs [f], recording its wall-clock duration
    under [name] when [spans] is [Some _].  Re-raises whatever [f]
    raises (the span is dropped). *)

val list : t -> (string * float) list
(** Recorded (name, seconds) spans, oldest first. *)

val total : t -> float

val render : t -> string
(** One right-aligned [name  12.3 ms] line per span plus a total line. *)
