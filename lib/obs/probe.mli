(** Structured event callbacks threaded through the timing pipelines.

    A probe is a record of per-event hooks the pipelines invoke as the
    simulated front end works: fetch-unit start/retire, trap prediction
    and redirects, fault squashes, cache and BTB and trace-cache
    activity, and window occupancy.  All hook arguments are immediates
    (ints, bools, constant constructors), so invoking a hook never
    allocates — with {!null} installed the hot path stays allocation-free
    (enforced by [test_golden.ml]'s allocation bound).

    Event taxonomy (DESIGN.md section 11):
    - [unit_start]/[unit_retire] bracket one fetch unit (a basic block on
      the conventional core, an atomic block on the block-structured
      core).  [unit_retire ~committed:false] is a fault-squashed unit.
    - [predict] reports each trap/branch prediction outcome.
    - [redirect] fires where the pipelines charge a fetch-redirect
      penalty: [cause] distinguishes an ordinary misprediction from a
      fault squash, so redirect events always reconcile with the
      aggregate [mispredicts] counter.
    - [squash] fires once per fault-squashed atomic block.
    - [icache_access]/[dcache_access] fire once per cache-line access
      (wired through {!Bisa_uarch.Cache} hooks), [btb_lookup] per BTB
      probe, [tc_lookup]/[tc_serve] per trace-cache lookup and served
      packet.
    - [occupancy] samples the ops resident in the retirement window at
      each dispatch, feeding the pipeline-occupancy timeline. *)

type redirect_cause = Mispredict | Fault_squash

type t = {
  unit_start : cycle:int -> addr:int -> ops:int -> unit;
  unit_retire :
    dispatch:int -> resolve:int -> retire:int -> ops:int -> committed:bool -> unit;
  predict : pc:int -> correct:bool -> unit;
  redirect : cycle:int -> until:int -> cause:redirect_cause -> unit;
  squash : cycle:int -> block:int -> ops:int -> unit;
  icache_access : addr:int -> hit:bool -> unit;
  dcache_access : addr:int -> hit:bool -> unit;
  btb_lookup : key:int -> hit:bool -> unit;
  tc_lookup : start:int -> hit:bool -> unit;
  tc_serve : ops:int -> unit;
  occupancy : cycle:int -> ops:int -> unit;
}

val null : t
(** Every hook ignores its arguments.  Physically unique, so pipelines
    can test {!is_null} once and skip hook wiring entirely. *)

val is_null : t -> bool
(** Physical equality with {!null}. *)

val of_option : t option -> t
(** [of_option None] is {!null}. *)

val cause_to_string : redirect_cause -> string
