(* Growable int vector: the recorder's only storage primitive, so tracing
   allocates amortized O(1) words per recorded event and nothing per
   skipped one. *)
module Vec = struct
  type t = { mutable a : int array; mutable n : int }

  let create () = { a = Array.make 256 0; n = 0 }

  let push v x =
    if v.n = Array.length v.a then begin
      let b = Array.make (2 * v.n) 0 in
      Array.blit v.a 0 b 0 v.n;
      v.a <- b
    end;
    v.a.(v.n) <- x;
    v.n <- v.n + 1

  let get v i = v.a.(i)
  let len v = v.n
end

let max_lanes = 64
let instant_tid = max_lanes (* control track, above every window-slot lane *)
let counter_tid = max_lanes + 1

type t = {
  sample : int;
  max_events : int;
  reg : Registry.t;
  c_units : Registry.counter;
  c_retired_blocks : Registry.counter;
  c_retired_ops : Registry.counter;
  c_squashed_blocks : Registry.counter;
  c_squashed_ops : Registry.counter;
  c_mispredicts : Registry.counter;
  c_fault_redirects : Registry.counter;
  c_predictions : Registry.counter;
  c_predict_wrong : Registry.counter;
  c_ica : Registry.counter;
  c_icm : Registry.counter;
  c_dca : Registry.counter;
  c_dcm : Registry.counter;
  c_btb_lookups : Registry.counter;
  c_btb_hits : Registry.counter;
  c_tc_lookups : Registry.counter;
  c_tc_hits : Registry.counter;
  c_tc_served : Registry.counter;
  (* the fetch unit between its start and retire hooks *)
  mutable pend_cycle : int;
  mutable pend_addr : int;
  mutable pend_ops : int;
  mutable pend_live : bool;
  mutable unit_idx : int;
  mutable sampling_unit : bool;
  mutable redirect_idx : int;
  mutable squash_idx : int;
  (* recorded spans (one fetch unit each) *)
  sp_b : Vec.t;
  sp_e : Vec.t;
  sp_addr : Vec.t;
  sp_ops : Vec.t;
  sp_committed : Vec.t;
  sp_lane : Vec.t;
  (* instants: kind 0 = redirect/mispredict, 1 = redirect/fault-squash,
     2 = squash; [a]/[b] are kind-specific payloads *)
  in_ts : Vec.t;
  in_kind : Vec.t;
  in_a : Vec.t;
  in_b : Vec.t;
  (* window-occupancy counter samples *)
  oc_ts : Vec.t;
  oc_v : Vec.t;
  (* per-track monotonicity clamps and span lane allocation *)
  mutable last_instant_ts : int;
  mutable last_counter_ts : int;
  lane_end : int array;
  mutable nlanes : int;
  mutable dropped : int;
}

let recorder ?(sample = 1) ?(max_events = 1_000_000) () =
  if sample < 1 then invalid_arg "Trace.recorder: sample < 1";
  let reg = Registry.create () in
  let c = Registry.counter reg in
  {
    sample;
    max_events;
    reg;
    c_units = c "fetch_units";
    c_retired_blocks = c "retired_blocks";
    c_retired_ops = c "retired_ops";
    c_squashed_blocks = c "squashed_blocks";
    c_squashed_ops = c "squashed_ops";
    c_mispredicts = c "mispredicts";
    c_fault_redirects = c "fault_squash_redirects";
    c_predictions = c "predictions";
    c_predict_wrong = c "predict_wrong";
    c_ica = c "icache_accesses";
    c_icm = c "icache_misses";
    c_dca = c "dcache_accesses";
    c_dcm = c "dcache_misses";
    c_btb_lookups = c "btb_lookups";
    c_btb_hits = c "btb_hits";
    c_tc_lookups = c "tc_lookups";
    c_tc_hits = c "tc_hits";
    c_tc_served = c "tc_served_ops";
    pend_cycle = 0;
    pend_addr = 0;
    pend_ops = 0;
    pend_live = false;
    unit_idx = 0;
    sampling_unit = false;
    redirect_idx = 0;
    squash_idx = 0;
    sp_b = Vec.create ();
    sp_e = Vec.create ();
    sp_addr = Vec.create ();
    sp_ops = Vec.create ();
    sp_committed = Vec.create ();
    sp_lane = Vec.create ();
    in_ts = Vec.create ();
    in_kind = Vec.create ();
    in_a = Vec.create ();
    in_b = Vec.create ();
    oc_ts = Vec.create ();
    oc_v = Vec.create ();
    last_instant_ts = 0;
    last_counter_ts = 0;
    lane_end = Array.make max_lanes min_int;
    nlanes = 0;
    dropped = 0;
  }

let registry t = t.reg
let counts t = Registry.counters t.reg
let dropped t = t.dropped

(* Lay a [b, e) span on the first lane free by [b]; overflowing spans are
   clamped onto the soonest-free lane so per-lane timestamps (and B/E
   nesting) stay monotonic no matter what the pipeline emits. *)
let lane_for t b e =
  let rec find i =
    if i >= t.nlanes then -1 else if t.lane_end.(i) <= b then i else find (i + 1)
  in
  let i = find 0 in
  if i >= 0 then begin
    t.lane_end.(i) <- e;
    (i, b, e)
  end
  else if t.nlanes < max_lanes then begin
    let i = t.nlanes in
    t.nlanes <- i + 1;
    t.lane_end.(i) <- e;
    (i, b, e)
  end
  else begin
    let best = ref 0 in
    for i = 1 to t.nlanes - 1 do
      if t.lane_end.(i) < t.lane_end.(!best) then best := i
    done;
    let b = max b t.lane_end.(!best) in
    let e = max e b in
    t.lane_end.(!best) <- e;
    (!best, b, e)
  end

let record_span t ~retire ~committed =
  t.pend_live <- false;
  if Vec.len t.sp_b < t.max_events then begin
    let b = t.pend_cycle in
    let e = max retire (b + 1) in
    let lane, b, e = lane_for t b e in
    Vec.push t.sp_b b;
    Vec.push t.sp_e e;
    Vec.push t.sp_addr t.pend_addr;
    Vec.push t.sp_ops t.pend_ops;
    Vec.push t.sp_committed (if committed then 1 else 0);
    Vec.push t.sp_lane lane
  end
  else t.dropped <- t.dropped + 1

let record_instant t ~ts ~kind ~a ~b =
  if Vec.len t.in_ts < t.max_events then begin
    let ts = max ts t.last_instant_ts in
    t.last_instant_ts <- ts;
    Vec.push t.in_ts ts;
    Vec.push t.in_kind kind;
    Vec.push t.in_a a;
    Vec.push t.in_b b
  end
  else t.dropped <- t.dropped + 1

let probe t =
  {
    Probe.unit_start =
      (fun ~cycle ~addr ~ops ->
        Registry.incr t.c_units;
        t.sampling_unit <- t.unit_idx mod t.sample = 0;
        t.unit_idx <- t.unit_idx + 1;
        if t.sampling_unit then begin
          t.pend_cycle <- cycle;
          t.pend_addr <- addr;
          t.pend_ops <- ops;
          t.pend_live <- true
        end);
    unit_retire =
      (fun ~dispatch:_ ~resolve:_ ~retire ~ops ~committed ->
        if committed then begin
          Registry.incr t.c_retired_blocks;
          Registry.add t.c_retired_ops ops
        end
        else begin
          Registry.incr t.c_squashed_blocks;
          Registry.add t.c_squashed_ops ops
        end;
        if t.pend_live then record_span t ~retire ~committed);
    predict =
      (fun ~pc:_ ~correct ->
        Registry.incr t.c_predictions;
        if not correct then Registry.incr t.c_predict_wrong);
    redirect =
      (fun ~cycle ~until ~cause ->
        Registry.incr t.c_mispredicts;
        let kind =
          match cause with
          | Probe.Mispredict -> 0
          | Probe.Fault_squash ->
            Registry.incr t.c_fault_redirects;
            1
        in
        if t.redirect_idx mod t.sample = 0 then
          record_instant t ~ts:cycle ~kind ~a:until ~b:0;
        t.redirect_idx <- t.redirect_idx + 1);
    squash =
      (fun ~cycle ~block ~ops ->
        if t.squash_idx mod t.sample = 0 then
          record_instant t ~ts:cycle ~kind:2 ~a:block ~b:ops;
        t.squash_idx <- t.squash_idx + 1);
    icache_access =
      (fun ~addr:_ ~hit ->
        Registry.incr t.c_ica;
        if not hit then Registry.incr t.c_icm);
    dcache_access =
      (fun ~addr:_ ~hit ->
        Registry.incr t.c_dca;
        if not hit then Registry.incr t.c_dcm);
    btb_lookup =
      (fun ~key:_ ~hit ->
        Registry.incr t.c_btb_lookups;
        if hit then Registry.incr t.c_btb_hits);
    tc_lookup =
      (fun ~start:_ ~hit ->
        Registry.incr t.c_tc_lookups;
        if hit then Registry.incr t.c_tc_hits);
    tc_serve = (fun ~ops -> Registry.add t.c_tc_served ops);
    occupancy =
      (fun ~cycle ~ops ->
        if t.sampling_unit then begin
          if Vec.len t.oc_ts < t.max_events then begin
            let ts = max cycle t.last_counter_ts in
            t.last_counter_ts <- ts;
            Vec.push t.oc_ts ts;
            Vec.push t.oc_v ops
          end
          else t.dropped <- t.dropped + 1
        end);
  }

(* --- Chrome trace_event export ------------------------------------- *)

(* Every event is emitted with its fields in one canonical order
   (name, cat, ph, ts, pid, tid, s, args — optional ones omitted, never
   reordered); the golden trace test checks this stays true. *)

let add_escaped buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let meta buf ~name ~tid ~value =
  Buffer.add_string buf "{\"name\":\"";
  add_escaped buf name;
  Buffer.add_string buf "\",\"ph\":\"M\",\"pid\":1";
  (match tid with
  | Some tid -> Buffer.add_string buf (Printf.sprintf ",\"tid\":%d" tid)
  | None -> ());
  Buffer.add_string buf ",\"args\":{\"name\":\"";
  add_escaped buf value;
  Buffer.add_string buf "\"}}"

let to_chrome_json ?(process_name = "bisa") t =
  let buf = Buffer.create (65536 + (64 * Vec.len t.sp_b)) in
  let first = ref true in
  let sep () =
    if !first then first := false else Buffer.add_string buf ",\n";
    Buffer.add_string buf "  "
  in
  Buffer.add_string buf "{\"traceEvents\":[\n";
  sep ();
  meta buf ~name:"process_name" ~tid:None ~value:process_name;
  for lane = 0 to t.nlanes - 1 do
    sep ();
    meta buf ~name:"thread_name" ~tid:(Some lane) ~value:(Printf.sprintf "window slot %d" lane)
  done;
  sep ();
  meta buf ~name:"thread_name" ~tid:(Some instant_tid) ~value:"control";
  for i = 0 to Vec.len t.sp_b - 1 do
    let lane = Vec.get t.sp_lane i in
    sep ();
    Buffer.add_string buf
      (Printf.sprintf
         "{\"name\":\"unit\",\"cat\":\"fetch\",\"ph\":\"B\",\"ts\":%d,\"pid\":1,\"tid\":%d,\"args\":{\"addr\":%d,\"ops\":%d}}"
         (Vec.get t.sp_b i) lane (Vec.get t.sp_addr i) (Vec.get t.sp_ops i));
    sep ();
    Buffer.add_string buf
      (Printf.sprintf
         "{\"name\":\"unit\",\"cat\":\"fetch\",\"ph\":\"E\",\"ts\":%d,\"pid\":1,\"tid\":%d,\"args\":{\"committed\":%d}}"
         (Vec.get t.sp_e i) lane (Vec.get t.sp_committed i))
  done;
  for i = 0 to Vec.len t.in_ts - 1 do
    sep ();
    let ts = Vec.get t.in_ts i in
    (match Vec.get t.in_kind i with
    | 0 | 1 ->
      let cause = if Vec.get t.in_kind i = 0 then "mispredict" else "fault-squash" in
      Buffer.add_string buf
        (Printf.sprintf
           "{\"name\":\"redirect\",\"cat\":\"control\",\"ph\":\"i\",\"ts\":%d,\"pid\":1,\"tid\":%d,\"s\":\"t\",\"args\":{\"until\":%d,\"cause\":\"%s\"}}"
           ts instant_tid (Vec.get t.in_a i) cause)
    | _ ->
      Buffer.add_string buf
        (Printf.sprintf
           "{\"name\":\"squash\",\"cat\":\"control\",\"ph\":\"i\",\"ts\":%d,\"pid\":1,\"tid\":%d,\"s\":\"t\",\"args\":{\"block\":%d,\"ops\":%d}}"
           ts instant_tid (Vec.get t.in_a i) (Vec.get t.in_b i)))
  done;
  for i = 0 to Vec.len t.oc_ts - 1 do
    sep ();
    Buffer.add_string buf
      (Printf.sprintf
         "{\"name\":\"window-ops\",\"cat\":\"window\",\"ph\":\"C\",\"ts\":%d,\"pid\":1,\"tid\":%d,\"args\":{\"ops\":%d}}"
         (Vec.get t.oc_ts i) counter_tid (Vec.get t.oc_v i))
  done;
  Buffer.add_string buf "\n]}\n";
  Buffer.contents buf

let write_chrome_json ?process_name t path =
  Bisa_base.Atomic_file.write_string path (to_chrome_json ?process_name t)

let occupancy_timeline ?(width = 64) ?(height = 8) t =
  let n = Vec.len t.oc_ts in
  if n = 0 then "window occupancy  (no samples; was tracing enabled?)\n"
  else begin
    let t0 = Vec.get t.oc_ts 0 and t1 = Vec.get t.oc_ts (n - 1) in
    let span = max 1 (t1 - t0) in
    let cols = max 1 (min width n) in
    let sum = Array.make cols 0.0 and cnt = Array.make cols 0 in
    for i = 0 to n - 1 do
      let c = min (cols - 1) ((Vec.get t.oc_ts i - t0) * cols / span) in
      sum.(c) <- sum.(c) +. float_of_int (Vec.get t.oc_v i);
      cnt.(c) <- cnt.(c) + 1
    done;
    let values =
      Array.init cols (fun c -> if cnt.(c) = 0 then 0.0 else sum.(c) /. float_of_int cnt.(c))
    in
    Bisa_base.Textplot.profile
      ~title:(Printf.sprintf "window occupancy, cycles %d..%d" t0 t1)
      ~unit_label:"ops in flight" ~values ~width:cols ~height ()
  end

(* --- Chrome trace JSON validation ---------------------------------- *)

(* A minimal JSON reader: enough to reparse our own exporter's output
   (and anything structurally similar) without external dependencies. *)
type json =
  | Jnull
  | Jbool of bool
  | Jnum of float
  | Jstr of string
  | Jarr of json list
  | Jobj of (string * json) list

exception Bad of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then s.[!pos] else '\000' in
  let advance () = incr pos in
  let fail msg = raise (Bad (Printf.sprintf "%s at byte %d" msg !pos)) in
  let rec skip_ws () =
    match peek () with
    | ' ' | '\t' | '\n' | '\r' ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c = if peek () = c then advance () else fail (Printf.sprintf "expected '%c'" c) in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match peek () with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        (match peek () with
        | '"' -> Buffer.add_char b '"'
        | '\\' -> Buffer.add_char b '\\'
        | '/' -> Buffer.add_char b '/'
        | 'n' -> Buffer.add_char b '\n'
        | 't' -> Buffer.add_char b '\t'
        | 'r' -> Buffer.add_char b '\r'
        | 'b' -> Buffer.add_char b '\b'
        | 'f' -> Buffer.add_char b '\012'
        | 'u' ->
          (* decoded code points are irrelevant to validation *)
          for _ = 1 to 4 do
            advance ()
          done;
          Buffer.add_char b '?'
        | c -> fail (Printf.sprintf "bad escape '\\%c'" c));
        advance ();
        go ()
      | c ->
        Buffer.add_char b c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let numchar c =
      (c >= '0' && c <= '9') || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
    in
    while !pos < n && numchar (peek ()) do
      advance ()
    done;
    if !pos = start then fail "expected a number";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "malformed number"
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word then begin
      pos := !pos + String.length word;
      v
    end
    else fail ("expected " ^ word)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | '"' -> Jstr (parse_string ())
    | '{' ->
      advance ();
      skip_ws ();
      if peek () = '}' then begin
        advance ();
        Jobj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | ',' ->
            advance ();
            members ((key, v) :: acc)
          | '}' ->
            advance ();
            List.rev ((key, v) :: acc)
          | _ -> fail "expected ',' or '}'"
        in
        Jobj (members [])
      end
    | '[' ->
      advance ();
      skip_ws ();
      if peek () = ']' then begin
        advance ();
        Jarr []
      end
      else begin
        let rec elements acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | ',' ->
            advance ();
            elements (v :: acc)
          | ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected ',' or ']'"
        in
        Jarr (elements [])
      end
    | 't' -> literal "true" (Jbool true)
    | 'f' -> literal "false" (Jbool false)
    | 'n' -> literal "null" Jnull
    | _ -> parse_number () |> fun f -> Jnum f
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

type json_stats = {
  events : int;
  begins : int;
  ends : int;
  instants : int;
  counter_events : int;
  by_name : (string * int) list;
}

let canonical_fields = [ "name"; "cat"; "ph"; "ts"; "pid"; "tid"; "s"; "args" ]

let field_rank k =
  let rec go i = function
    | [] -> -1
    | f :: rest -> if f = k then i else go (i + 1) rest
  in
  go 0 canonical_fields

let validate s =
  match parse_json s with
  | exception Bad msg -> Error ("JSON parse error: " ^ msg)
  | Jobj top -> begin
    match List.assoc_opt "traceEvents" top with
    | Some (Jarr events) -> begin
      let stacks : (int, string list ref) Hashtbl.t = Hashtbl.create 8 in
      let last_ts : (int, int ref) Hashtbl.t = Hashtbl.create 8 in
      let names : (string, int ref) Hashtbl.t = Hashtbl.create 8 in
      let begins = ref 0 and ends = ref 0 and instants = ref 0 and counters = ref 0 in
      let count name =
        match Hashtbl.find_opt names name with
        | Some r -> incr r
        | None -> Hashtbl.add names name (ref 1)
      in
      let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e in
      let check i ev =
        match ev with
        | Jobj fields ->
          let rec ordered rank = function
            | [] -> Ok ()
            | (k, _) :: rest ->
              let r = field_rank k in
              if r < 0 then Error (Printf.sprintf "event %d: unknown field %S" i k)
              else if r <= rank then
                Error (Printf.sprintf "event %d: field %S out of canonical order" i k)
              else ordered r rest
          in
          let* () = ordered (-1) fields in
          let str k = match List.assoc_opt k fields with Some (Jstr v) -> Some v | _ -> None in
          let num k =
            match List.assoc_opt k fields with Some (Jnum v) -> Some (int_of_float v) | _ -> None
          in
          let* name =
            match str "name" with
            | Some v -> Ok v
            | None -> Error (Printf.sprintf "event %d: missing name" i)
          in
          let* ph =
            match str "ph" with
            | Some v -> Ok v
            | None -> Error (Printf.sprintf "event %d: missing ph" i)
          in
          if ph = "M" then Ok ()
          else begin
            let* ts =
              match num "ts" with
              | Some v -> Ok v
              | None -> Error (Printf.sprintf "event %d: missing ts" i)
            in
            let tid = Option.value (num "tid") ~default:(-1) in
            let last =
              match Hashtbl.find_opt last_ts tid with
              | Some r -> r
              | None ->
                let r = ref min_int in
                Hashtbl.add last_ts tid r;
                r
            in
            if ts < !last then
              Error
                (Printf.sprintf "event %d: non-monotonic ts %d (tid %d, last %d)" i ts tid !last)
            else begin
              last := ts;
              let stack =
                match Hashtbl.find_opt stacks tid with
                | Some r -> r
                | None ->
                  let r = ref [] in
                  Hashtbl.add stacks tid r;
                  r
              in
              match ph with
              | "B" ->
                incr begins;
                count name;
                stack := name :: !stack;
                Ok ()
              | "E" -> begin
                incr ends;
                match !stack with
                | top :: rest when top = name ->
                  stack := rest;
                  Ok ()
                | top :: _ ->
                  Error (Printf.sprintf "event %d: E %S closes B %S (tid %d)" i name top tid)
                | [] -> Error (Printf.sprintf "event %d: E %S with no open B (tid %d)" i name tid)
              end
              | "i" ->
                incr instants;
                count name;
                Ok ()
              | "C" ->
                incr counters;
                count name;
                Ok ()
              | ph -> Error (Printf.sprintf "event %d: unsupported ph %S" i ph)
            end
          end
        | _ -> Error (Printf.sprintf "event %d: not an object" i)
      in
      let rec walk i = function
        | [] -> Ok ()
        | ev :: rest -> ( match check i ev with Ok () -> walk (i + 1) rest | Error _ as e -> e)
      in
      match walk 0 events with
      | Error _ as e -> e
      | Ok () ->
        let unbalanced =
          Hashtbl.fold (fun tid stack acc -> if !stack <> [] then tid :: acc else acc) stacks []
        in
        if unbalanced <> [] then
          Error
            (Printf.sprintf "unbalanced B/E pairs on tid(s) %s"
               (String.concat "," (List.map string_of_int (List.sort compare unbalanced))))
        else
          Ok
            {
              events = List.length events;
              begins = !begins;
              ends = !ends;
              instants = !instants;
              counter_events = !counters;
              by_name =
                Hashtbl.fold (fun name r acc -> (name, !r) :: acc) names []
                |> List.sort (fun (a, _) (b, _) -> String.compare a b);
            }
    end
    | _ -> Error "top-level object has no traceEvents array"
  end
  | _ -> Error "top-level JSON value is not an object"
