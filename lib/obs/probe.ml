type redirect_cause = Mispredict | Fault_squash

type t = {
  unit_start : cycle:int -> addr:int -> ops:int -> unit;
  unit_retire :
    dispatch:int -> resolve:int -> retire:int -> ops:int -> committed:bool -> unit;
  predict : pc:int -> correct:bool -> unit;
  redirect : cycle:int -> until:int -> cause:redirect_cause -> unit;
  squash : cycle:int -> block:int -> ops:int -> unit;
  icache_access : addr:int -> hit:bool -> unit;
  dcache_access : addr:int -> hit:bool -> unit;
  btb_lookup : key:int -> hit:bool -> unit;
  tc_lookup : start:int -> hit:bool -> unit;
  tc_serve : ops:int -> unit;
  occupancy : cycle:int -> ops:int -> unit;
}

let null =
  {
    unit_start = (fun ~cycle:_ ~addr:_ ~ops:_ -> ());
    unit_retire = (fun ~dispatch:_ ~resolve:_ ~retire:_ ~ops:_ ~committed:_ -> ());
    predict = (fun ~pc:_ ~correct:_ -> ());
    redirect = (fun ~cycle:_ ~until:_ ~cause:_ -> ());
    squash = (fun ~cycle:_ ~block:_ ~ops:_ -> ());
    icache_access = (fun ~addr:_ ~hit:_ -> ());
    dcache_access = (fun ~addr:_ ~hit:_ -> ());
    btb_lookup = (fun ~key:_ ~hit:_ -> ());
    tc_lookup = (fun ~start:_ ~hit:_ -> ());
    tc_serve = (fun ~ops:_ -> ());
    occupancy = (fun ~cycle:_ ~ops:_ -> ());
  }

let is_null t = t == null
let of_option = function Some p -> p | None -> null
let cause_to_string = function Mispredict -> "mispredict" | Fault_squash -> "fault-squash"
