(** A registry of named counters and histograms.

    Replaces ad-hoc record-field plumbing for new statistics: a consumer
    interns a counter once ([counter reg "tc_hits"]) and bumps it through
    the returned handle — adding a counter never touches a signature, and
    exporters enumerate whatever the run happened to record.

    Handles are plain mutable cells: [incr]/[add] are branch-free field
    updates, safe on hot paths.  A registry belongs to one run on one
    domain; it is not synchronized. *)

type t
type counter

val create : unit -> t

val counter : t -> string -> counter
(** Intern [name], creating it at zero on first use. *)

val incr : counter -> unit
val add : counter -> int -> unit
val set : counter -> int -> unit
val value : counter -> int

val histogram : t -> ?buckets:int -> string -> Bisa_base.Stats.Histogram.t
(** Intern a histogram ([buckets] defaults to 64; ignored when the name
    already exists). *)

val find : t -> string -> int option
(** The current value of counter [name], if it was ever interned. *)

val counters : t -> (string * int) list
(** All counters, sorted by name. *)

val histograms : t -> (string * Bisa_base.Stats.Histogram.t) list
(** All histograms, sorted by name. *)

val render : t -> string
(** One [name value] line per counter, sorted — for verbose CLI output. *)
