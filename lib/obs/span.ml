type t = { mutable spans : (string * float) list (* newest first *) }

let create () = { spans = [] }

let time t name f =
  match t with
  | None -> f ()
  | Some t ->
    let t0 = Unix.gettimeofday () in
    let v = f () in
    t.spans <- (name, Unix.gettimeofday () -. t0) :: t.spans;
    v

let list t = List.rev t.spans
let total t = List.fold_left (fun acc (_, s) -> acc +. s) 0.0 t.spans

let render t =
  let lines =
    List.map (fun (name, s) -> Printf.sprintf "  %-24s %8.2f ms" name (1000.0 *. s)) (list t)
  in
  String.concat "\n" (lines @ [ Printf.sprintf "  %-24s %8.2f ms" "total" (1000.0 *. total t) ])
