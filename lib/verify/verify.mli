(** Static well-formedness verification — the load/decode trust boundary.

    {!Bisa_isa.Encode} proves an input {e decodes}; this module proves the
    decoded program is {e structurally meaningful}: every control-transfer
    label resolves to a real block or instruction, trap metadata is
    consistent with the declared successor structure, blocks respect the
    paper's size and fault limits (sections 4.1/4.3), register indexes are
    in range, and the r31 call/return convention is obeyed.  Simulators
    and the timing predecoder index arrays with exactly these quantities,
    so "verified" is the precondition that justifies their allocation-free
    unchecked hot paths.

    Violations are reported as structured {!Bisa_base.Diag.t} values —
    never exceptions — whose message begins with a stable {e rule id}
    (e.g. ["target-range: block 3 op 1: ..."]), names the offending
    block/op, and ends with a fix hint.  {!rule_of} recovers the id.

    The checkers are total on arbitrary decoded input: a malformed
    successor structure yields diagnostics, not an out-of-bounds access
    inside the verifier itself.

    {2 Block-structured rules}

    - [entry-range]: the entry block id is a valid block.
    - [target-range]: fault, trap, goto and call labels name real blocks.
    - [reg-range]: every register index is within the register file.
    - [reg-class]: each operand's integer/float register class matches
      what the operation's semantics read and write (a flipped class bit
      would make the register file raise instead of compute).
    - [block-size]: at most 16 operations per block (issue-width rule 1).
    - [fault-count]: at most 2 fault operations (termination rule 2).
    - [succ-log2]: trap [succ_log2] is within 1..3.
    - [succ-log2-consistent]: [succ_log2] equals the clamped
      ceil-log2 of the block's distinct declared successors — the exact
      quantity the linker computes and the predictor's history shift uses.
    - [succ-shape]: [succ_struct] and [variant_group] have one entry per
      block.
    - [succ-range]: every declared successor / variant id is a real block.
    - [ijump-declared]: an indirect-jump block declares at least one
      successor (its jump-table targets) for BTB prediction.
    - [ra-discipline]: r31 is written only by call terminators and the
      epilogue reload idiom [Load r31, sp+off].
    - [symbol-range]: symbol values name real blocks.
    - [data-base-align]: the data segment base is 8-byte aligned.

    {2 Conventional rules}

    [nonempty], [entry-range], [target-range], [fallthrough] (the last
    instruction must not fall through or set a return point past the end),
    [reg-range], [reg-class], [ra-discipline], [symbol-range],
    [data-base-align]. *)

type verified_block_prog = private Bisa_isa.Block_prog.t
(** A {!Bisa_isa.Block_prog.t} that passed every rule.  Obtainable only
    through {!block_prog} / {!block_exn}; recover the program with
    [(w : verified_block_prog :> Bisa_isa.Block_prog.t)]. *)

type verified_conv_prog = private Bisa_isa.Conv_prog.t

val block_diags : Bisa_isa.Block_prog.t -> Bisa_base.Diag.t list
(** All violations, in rule order then block order; [[]] means verified. *)

val conv_diags : Bisa_isa.Conv_prog.t -> Bisa_base.Diag.t list

val block_prog :
  Bisa_isa.Block_prog.t -> (verified_block_prog, Bisa_base.Diag.t list) result

val conv_prog :
  Bisa_isa.Conv_prog.t -> (verified_conv_prog, Bisa_base.Diag.t list) result

val block_exn : Bisa_isa.Block_prog.t -> verified_block_prog
(** As {!block_prog}, raising {!Bisa_base.Diag.Fail} with the first
    diagnostic (its message noting the total count) on rejection — for
    boundaries like the timing predecoder where a verified program is a
    precondition, not a user-facing outcome. *)

val conv_exn : Bisa_isa.Conv_prog.t -> verified_conv_prog

val rule_of : Bisa_base.Diag.t -> string
(** The rule id a verifier diagnostic's message begins with (the text
    before the first [':']); [""] for non-verifier diagnostics. *)

val succ_log2_of_count : int -> int
(** The architectural history-bit count for a block with [n] distinct
    successors: [ceil(log2 n)] clamped to 1..3 (paper section 4.3) — the
    same formula the linker uses, exposed so the consistency rule and the
    backend can never drift apart. *)
