(* Static well-formedness verification for both ISAs.  Every rule reports
   a structured diagnostic whose message starts with the rule id; the
   checkers themselves are total on arbitrary decoded input (no array
   access is performed before the quantity indexing it has been checked,
   or without an explicit bound), because they run on the untrusted side
   of the decode boundary. *)

module Diag = Bisa_base.Diag
module Reg = Bisa_isa.Reg
module Op = Bisa_isa.Op
module Insn = Bisa_isa.Insn
module Ablock = Bisa_isa.Ablock
module Block_prog = Bisa_isa.Block_prog
module Conv_prog = Bisa_isa.Conv_prog

type verified_block_prog = Block_prog.t
type verified_conv_prog = Conv_prog.t

let spf = Printf.sprintf

(* The linker's formula (paper section 4.3): history bits for n distinct
   successors, clamped to the predictor's 1..3 range. *)
let succ_log2_of_count n =
  let rec bits acc = if 1 lsl acc >= n then acc else bits (acc + 1) in
  max 1 (min 3 (bits 0))

let rule_of (d : Diag.t) =
  match String.index_opt d.message ':' with
  | Some i -> String.sub d.message 0 i
  | None -> ""

(* Diagnostics accumulate in reverse; every helper closes over [ds].
   [emit] takes a pre-rendered message so one binding serves every rule's
   argument shape. *)
let collector component =
  let ds = ref [] in
  let emit rule msg = ds := Diag.error ~component (rule ^ ": " ^ msg) :: !ds in
  (ds, emit)

let check_reg emit ~where r =
  let (Reg.Int i | Reg.Flt i) = r in
  if i < 0 || i >= Reg.count then
    emit "reg-range"
      (spf "%s: register index %d outside 0..%d (fix: re-encode with a real register)"
         where i (Reg.count - 1))

(* The executor reads each operand through the register class the
   operation implies (integer vs float register file); a class mismatch
   would raise inside the register file instead of computing.  This
   mirrors Opsem.exec operand for operand. *)
let class_violation (op : Op.t) =
  let i r = Reg.is_int r in
  let f r = not (Reg.is_int r) in
  let ok =
    match op with
    | Op.Nop -> true
    | Op.Mov (d, s) -> i d = i s
    | Op.Li (d, _) -> i d
    | Op.Lif (d, _) -> f d
    | Op.Alu (_, d, s1, s2) ->
      i d && i s1 && (match s2 with Op.R r -> i r | Op.I _ -> true)
    | Op.Fpu (_, d, s1, s2) -> f d && f s1 && f s2
    | Op.Fcmp (_, d, s1, s2) -> i d && f s1 && f s2
    | Op.Itof (d, s) -> f d && i s
    | Op.Ftoi (d, s) -> i d && f s
    | Op.Select (_, d, s1, s2, t, fl) ->
      i s1
      && (match s2 with Op.R r -> i r | Op.I _ -> true)
      && i t = i d && i fl = i d
    | Op.Load (d, b, _) -> i d && i b
    | Op.Loadf (d, b, _) -> f d && i b
    | Op.Store (s, b, _) -> i s && i b
    | Op.Storef (s, b, _) -> f s && i b
    | Op.Print s -> i s
    | Op.Printf s -> f s
  in
  not ok

let check_int emit ~where what r =
  if not (Reg.is_int r) then
    emit "reg-class"
      (spf "%s: %s operand %s must be an integer register (fix: re-encode the class bit)"
         where what (Reg.to_string r))

let check_op_regs emit ~where op =
  List.iter (check_reg emit ~where) (Op.defs op);
  List.iter (check_reg emit ~where) (Op.uses op);
  if class_violation op then
    emit "reg-class"
      (spf "%s: %s mixes integer and float register classes (fix: re-encode the class bits)"
         where (Op.to_string op))

(* r31 may be written only by call terminators (hardware) and the
   epilogue reload [Load r31, sp+off] (the compiler's save/restore
   idiom); any other body definition would let arbitrary data become a
   return target without the stack discipline that makes it a block id. *)
let ra_ok (op : Op.t) =
  if not (List.exists (Reg.equal Reg.ra) (Op.defs op)) then true
  else
    match op with
    | Op.Load (d, base, _) -> Reg.equal d Reg.ra && Reg.equal base Reg.sp
    | _ -> false

(* --- Block-structured programs ------------------------------------------- *)

let block_diags (p : Block_prog.t) =
  let ds, emit = collector "verify.block" in
  let nblocks = Array.length p.blocks in
  let in_range b = b >= 0 && b < nblocks in
  let target ~where what l =
    if not (in_range l) then
      emit "target-range"
        (spf "%s: %s target %d is not a block id in 0..%d (fix: relink)" where what l
           (nblocks - 1))
  in
  if not (in_range p.entry) then
    emit "entry-range"
      (spf "entry: block id %d is not in 0..%d (fix: point entry at a real block)"
         p.entry (nblocks - 1));
  if p.data_base land 7 <> 0 then
    emit "data-base-align"
      (spf "data: base address 0x%x is not 8-byte aligned (fix: align the data segment)"
         p.data_base);
  List.iter
    (fun (name, b) ->
      if not (in_range b) then
        emit "symbol-range"
          (spf "symbol %s: block id %d is not in 0..%d (fix: relink the symbol table)"
             name b (nblocks - 1)))
    p.symbols;
  (* Per-block structural rules. *)
  Array.iteri
    (fun bi (blk : int Ablock.t) ->
      let where = spf "block %d" bi in
      let at k = spf "block %d op %d" bi k in
      let size = Ablock.size blk in
      if size > 16 then
        emit "block-size"
          (spf "%s: %d operations exceed the 16-wide issue limit (fix: split the block)"
             where size);
      let faults = Ablock.fault_count blk in
      if faults > 2 then
        emit "fault-count"
          (spf
             "%s: %d fault operations exceed the limit of 2 (enlargement rule 2) (fix: stop merging at two faults)"
             where faults);
      Array.iteri
        (fun k elt ->
          let w = at k in
          match elt with
          | Ablock.Op op ->
            check_op_regs emit ~where:w op;
            if not (ra_ok op) then
              emit "ra-discipline"
                (spf
                   "%s: %s writes r31; only call terminators and 'load r31, sp+off' may (fix: use another register)"
                   w (Op.to_string op))
          | Ablock.Fault (_, r1, r2, l) ->
            check_reg emit ~where:w r1;
            check_reg emit ~where:w r2;
            check_int emit ~where:w "fault" r1;
            check_int emit ~where:w "fault" r2;
            target ~where:w "fault" l)
        blk.Ablock.elts;
      let wt = at (Array.length blk.Ablock.elts) in
      match blk.Ablock.term with
      | Ablock.Trap { rs1; rs2; taken; not_taken; succ_log2; _ } ->
        check_reg emit ~where:wt rs1;
        check_reg emit ~where:wt rs2;
        check_int emit ~where:wt "trap" rs1;
        check_int emit ~where:wt "trap" rs2;
        target ~where:wt "trap taken" taken;
        target ~where:wt "trap not-taken" not_taken;
        if succ_log2 < 1 || succ_log2 > 3 then
          emit "succ-log2"
            (spf "%s: succ_log2 %d outside 1..3 (fix: clamp to the predictor's history width)"
               wt succ_log2)
      | Ablock.Goto l -> target ~where:wt "goto" l
      | Ablock.Call { callee; ret_to } ->
        target ~where:wt "call" callee;
        target ~where:wt "return-to" ret_to
      | Ablock.Return -> ()
      | Ablock.Ijump r ->
        check_reg emit ~where:wt r;
        check_int emit ~where:wt "ijump" r
      | Ablock.Halt -> ())
    p.blocks;
  (* Successor structure: shape first, then contents; the content rules
     run only at indexes the shape rule proved exist. *)
  let shape_ok = ref true in
  if Array.length p.succ_struct <> nblocks then begin
    shape_ok := false;
    emit "succ-shape"
      (spf "succ_struct: %d entries for %d blocks (fix: one successor record per block)"
         (Array.length p.succ_struct) nblocks)
  end;
  if Array.length p.variant_group <> nblocks then begin
    shape_ok := false;
    emit "succ-shape"
      (spf "variant_group: %d entries for %d blocks (fix: one variant set per block)"
         (Array.length p.variant_group) nblocks)
  end;
  if !shape_ok then
    Array.iteri
      (fun bi (blk : int Ablock.t) ->
        let dir1, dir0 = p.succ_struct.(bi) in
        let check_ids what ids =
          Array.iter
            (fun s ->
              if not (in_range s) then
                emit "succ-range"
                  (spf "block %d: %s successor %d is not a block id in 0..%d (fix: relink)"
                     bi what s (nblocks - 1)))
            ids
        in
        check_ids "taken" dir1;
        check_ids "not-taken" dir0;
        check_ids "variant" p.variant_group.(bi);
        match blk.Ablock.term with
        | Ablock.Trap { succ_log2; _ } ->
          let distinct =
            List.sort_uniq compare (Array.to_list dir1 @ Array.to_list dir0)
          in
          let expect = succ_log2_of_count (List.length distinct) in
          if succ_log2 >= 1 && succ_log2 <= 3 && succ_log2 <> expect then
            emit "succ-log2-consistent"
              (spf
                 "block %d: succ_log2 %d but %d distinct declared successors need %d (fix: recompute from succ_struct)"
                 bi succ_log2 (List.length distinct) expect)
        | Ablock.Ijump _ ->
          if Array.length dir1 = 0 then
            emit "ijump-declared"
              (spf "block %d: indirect jump declares no successors (fix: declare the jump-table targets)"
                 bi)
        | _ -> ())
      p.blocks;
  List.rev !ds

(* --- Conventional programs ------------------------------------------------ *)

let conv_diags (p : Conv_prog.t) =
  let ds, emit = collector "verify.conv" in
  let n = Array.length p.insns in
  if n = 0 then
    emit "nonempty" "code: program has no instructions (fix: emit at least a halt)"
  else if p.entry < 0 || p.entry >= n then
    emit "entry-range"
      (spf "entry: instruction index %d is not in 0..%d (fix: point entry at a real instruction)"
         p.entry (n - 1));
  if p.data_base land 7 <> 0 then
    emit "data-base-align"
      (spf "data: base address 0x%x is not 8-byte aligned (fix: align the data segment)"
         p.data_base);
  List.iter
    (fun (name, i) ->
      if i < 0 || i >= n then
        emit "symbol-range"
          (spf "symbol %s: instruction index %d is not in 0..%d (fix: relink the symbol table)"
             name i (n - 1)))
    p.symbols;
  Array.iteri
    (fun i insn ->
      let where = spf "insn %d" i in
      List.iter (check_reg emit ~where) (Insn.defs insn);
      List.iter (check_reg emit ~where) (Insn.uses insn);
      (match insn with
      | Insn.Op op ->
        if class_violation op then
          emit "reg-class"
            (spf
               "%s: %s mixes integer and float register classes (fix: re-encode the class bits)"
               where (Op.to_string op));
        if not (ra_ok op) then
          emit "ra-discipline"
            (spf
               "%s: %s writes r31; only call instructions and 'load r31, sp+off' may (fix: use another register)"
               where (Op.to_string op))
      | Insn.Br (_, s1, s2, _) ->
        check_int emit ~where "branch" s1;
        check_int emit ~where "branch" s2
      | Insn.Jr r -> check_int emit ~where "jr" r
      | _ -> ());
      match Insn.label insn with
      | Some l when l < 0 || l >= n ->
        emit "target-range"
          (spf "%s: target %d is not an instruction index in 0..%d (fix: relink)" where l
             (n - 1))
      | _ -> ())
    p.insns;
  (* The executor advances pc past non-control instructions and past a
     call's return point; the last instruction must make both impossible. *)
  if n > 0 then begin
    match p.insns.(n - 1) with
    | Insn.Jmp _ | Insn.Ret | Insn.Jr _ | Insn.Halt -> ()
    | Insn.Op _ | Insn.Br _ | Insn.Call _ ->
      emit "fallthrough"
        (spf
           "insn %d: the last instruction can fall through past the end (fix: end with jmp/ret/jr/halt)"
           (n - 1))
  end;
  List.rev !ds

(* --- Witnesses ------------------------------------------------------------ *)

let block_prog p = match block_diags p with [] -> Ok p | ds -> Error ds
let conv_prog p = match conv_diags p with [] -> Ok p | ds -> Error ds

let first_exn = function
  | [] -> assert false
  | (d : Diag.t) :: rest ->
    let message =
      if rest = [] then d.message
      else spf "%s (+%d more diagnostics)" d.message (List.length rest)
    in
    raise (Diag.Fail { d with message })

let block_exn p = match block_diags p with [] -> p | ds -> first_exn ds
let conv_exn p = match conv_diags p with [] -> p | ds -> first_exn ds
