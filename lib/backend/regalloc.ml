module Ir = Bisa_ir.Ir
module Liveness = Bisa_ir.Liveness
module Bitset = Bisa_ir.Bitset
module Reg = Bisa_isa.Reg

type result = {
  loc : Frame.loc array;
  spill_count : int;
  used_callee_saved : Reg.t list;
}

type interval = {
  vreg : int;
  start : int;
  stop : int;
  kind : Ir.kind;
  crosses_call : bool;
}

let build_intervals (f : Ir.func) =
  let nv = Array.length f.vreg_kinds in
  let istart = Array.make nv max_int and istop = Array.make nv (-1) in
  let extend v p =
    if p < istart.(v) then istart.(v) <- p;
    if p > istop.(v) then istop.(v) <- p
  in
  let live = Liveness.analyze f in
  let calls = ref [] in
  let pos = ref 0 in
  let block_start = Array.make (Array.length f.blocks) 0 in
  Array.iteri
    (fun i (b : Ir.block) ->
      block_start.(i) <- !pos;
      let bs = !pos in
      Bitset.iter live.live_in.(i) (fun v -> extend v bs);
      List.iter
        (fun op ->
          let p = !pos in
          List.iter (fun v -> extend v p) (Ir.op_uses op);
          List.iter (fun v -> extend v p) (Ir.op_defs op);
          incr pos)
        b.ops;
      let p = !pos in
      List.iter (fun v -> extend v p) (Ir.term_uses b.term);
      List.iter (fun v -> extend v p) (Ir.term_defs b.term);
      (match b.term with Ir.Call _ -> calls := p :: !calls | _ -> ());
      incr pos;
      (* Live-out values extend one past the terminator: a value that is
         live across a call terminator (e.g. a loop counter flowing around
         the back edge) must be distinguishable from one merely consumed
         by the call's argument setup — both would otherwise end exactly
         at the call position and [crosses] would miss the former, handing
         it a caller-saved register that the next iteration's argument
         moves clobber. *)
      let be = !pos in
      Bitset.iter live.live_out.(i) (fun v -> extend v be))
    f.blocks;
  (* Parameters receive their values from entry-block moves synthesized
     after allocation; anchor them at the entry block start. *)
  List.iter (fun v -> extend v block_start.(f.entry)) f.params;
  let calls = List.sort compare !calls in
  let crosses v =
    List.exists (fun c -> c >= istart.(v) && c < istop.(v)) calls
  in
  let ivs = ref [] in
  for v = nv - 1 downto 0 do
    if istop.(v) >= 0 then
      ivs :=
        {
          vreg = v;
          start = istart.(v);
          stop = istop.(v);
          kind = f.vreg_kinds.(v);
          crosses_call = crosses v;
        }
        :: !ivs
  done;
  List.sort (fun a b -> compare (a.start, a.vreg) (b.start, b.vreg)) !ivs

let allocate (f : Ir.func) =
  let nv = Array.length f.vreg_kinds in
  let loc = Array.make nv (Frame.Lspill 0) in
  let spill_count = ref 0 in
  let fresh_slot () =
    let s = !spill_count in
    incr spill_count;
    s
  in
  let used_callee_saved = ref [] in
  let note_reg r =
    if Frame.is_callee_saved r && not (List.mem r !used_callee_saved) then
      used_callee_saved := r :: !used_callee_saved
  in
  (* Free pools, per kind, in preference order. *)
  let free_int = ref Frame.int_allocatable in
  let free_flt = ref Frame.flt_allocatable in
  let pool_of = function Ir.Kint -> free_int | Ir.Kflt -> free_flt in
  (* Active intervals carrying a register, sorted by stop ascending. *)
  let active = ref [] in
  let release iv =
    match loc.(iv.vreg) with
    | Frame.Lreg r ->
      let pool = pool_of iv.kind in
      (* Restore preference order on release. *)
      let order = match iv.kind with
        | Ir.Kint -> Frame.int_allocatable
        | Ir.Kflt -> Frame.flt_allocatable
      in
      pool := List.filter (fun x -> Reg.equal x r || List.mem x !pool) order
    | Frame.Lspill _ -> ()
  in
  let expire p =
    let expired, still = List.partition (fun iv -> iv.stop < p) !active in
    List.iter release expired;
    active := still
  in
  let insert_active iv =
    active := List.sort (fun a b -> compare a.stop b.stop) (iv :: !active)
  in
  let take_reg iv =
    let pool = pool_of iv.kind in
    let candidates =
      if iv.crosses_call then List.filter Frame.is_callee_saved !pool else !pool
    in
    match candidates with
    | r :: _ ->
      pool := List.filter (fun x -> not (Reg.equal x r)) !pool;
      note_reg r;
      Some r
    | [] -> None
  in
  let assign iv =
    match take_reg iv with
    | Some r ->
      loc.(iv.vreg) <- Frame.Lreg r;
      insert_active iv
    | None ->
      (* Spill: victim is the furthest-ending active interval of the same
         kind whose register this interval could use, or the current one. *)
      let usable (a : interval) =
        a.kind = iv.kind
        &&
        match loc.(a.vreg) with
        | Frame.Lreg r -> (not iv.crosses_call) || Frame.is_callee_saved r
        | Frame.Lspill _ -> false
      in
      let victims = List.filter usable !active in
      let furthest =
        List.fold_left
          (fun best a ->
            match best with
            | None -> Some a
            | Some b -> if a.stop > b.stop then Some a else best)
          None victims
      in
      (match furthest with
      | Some victim when victim.stop > iv.stop -> begin
        match loc.(victim.vreg) with
        | Frame.Lreg r ->
          loc.(victim.vreg) <- Frame.Lspill (fresh_slot ());
          active := List.filter (fun a -> a.vreg <> victim.vreg) !active;
          loc.(iv.vreg) <- Frame.Lreg r;
          insert_active iv
        | Frame.Lspill _ -> assert false
      end
      | _ -> loc.(iv.vreg) <- Frame.Lspill (fresh_slot ()))
  in
  List.iter
    (fun iv ->
      expire iv.start;
      assign iv)
    (build_intervals f);
  { loc; spill_count = !spill_count; used_callee_saved = !used_callee_saved }
