(* The bisad wire protocol: typed requests and responses, their binary
   codec, and the length-prefixed framing both ends speak.

   The same request values are built by the one-shot CLIs (lib/cli/Args
   terms produce them) and by the daemon client, so "what bisasim does"
   and "what bisad serves" cannot drift apart: both roads lead through
   [to_config] and the render helpers below, which reproduce the one-shot
   CLI's stdout byte for byte.

   Every decode failure — framing or payload — is a structured
   {!Bisa_base.Diag.t} whose location is the byte offset the reader had
   reached, in the style of [Encode.Malformed]: a fuzzer (or a hostile
   peer) gets a diagnostic, never a crash or a hang. *)

module Diag = Bisa_base.Diag
module Codec = Bisa_base.Codec

let component = "proto"

(* bisad/2: sim_cfg gained the per-request [deadline] field and stats
   gained [spool_skipped].  Both ends of the wire live in this repo, so a
   version bump (rejected cleanly by [decoding]) is the whole migration. *)
let version = "bisad/2"

(* A frame larger than this is rejected before any allocation happens:
   the bound keeps a hostile length prefix from looking like a request
   for gigabytes. *)
let max_frame = 64 * 1024 * 1024

let fail_at ~offset ~section fmt =
  Printf.ksprintf
    (fun message ->
      raise
        (Diag.Fail (Diag.error ~loc:(Diag.at_byte ~offset ~section) ~component message)))
    fmt

(* --- request / response values ----------------------------------------- *)

type isa = Conv | Block

let isa_name = function Conv -> "conv" | Block -> "block"

type prog_src =
  | Source of { src : string; libs : string list }
  | Conv_bin of string
  | Block_bin of string

type sim_cfg = {
  icache_kb : int;
  perfect_pred : bool;
  budget : int;
  out_cap : int option;
  deadline : float option;
      (* Per-request wall-clock deadline in seconds.  The daemon answers a
         request past its deadline with a structured deadline [Err]
         instead of letting it keep a connection (or the select loop)
         hostage.  Deliberately absent from the result-cache key: it
         bounds the wait, not the result. *)
}

let default_sim_cfg =
  {
    icache_kb = 16;
    perfect_pred = false;
    budget = Bisa_timing.Config.default.op_budget;
    out_cap = None;
    deadline = None;
  }

let cache_of_kb = function
  | 0 -> None
  | kb -> Some { Bisa_uarch.Cache.size_bytes = kb * 1024; assoc = 4; line_bytes = 32 }

let to_config (c : sim_cfg) =
  {
    Bisa_timing.Config.default with
    icache = cache_of_kb c.icache_kb;
    predictor =
      (if c.perfect_pred then Bisa_timing.Config.Perfect else Bisa_timing.Config.Real);
    op_budget = c.budget;
  }

type sim_mode = Timing | Functional

type request =
  | Ping
  | Stats
  | Shutdown
  | Compile of { src : prog_src; isa : isa }
  | Verify of { src : prog_src }
  | Simulate of {
      src : prog_src;
      isa : isa;
      mode : sim_mode;
      exec : Bisa_sim.Compile.backend;
      cfg : sim_cfg;
      show_output : bool;
    }
  | Cell of {
      bench : string;
      scale : int option;
      isa : isa;
      exec : Bisa_sim.Compile.backend;
      cfg : sim_cfg;
    }
  | Batch of request list

type stats = {
  served : int;
  sim_hits : int;
  sim_misses : int;
  artifacts : int;
  results : int;
  spooled : int;
  spool_skipped : int;  (* unreadable spool entries skipped at reload *)
  inflight_peak : int;
  rss_kb : int;
}

type response =
  | Pong of { server : string }
  | Binary of { isa : isa; bytes : string; prog_hash : int64 }
  | Verdict of { diags : Diag.t list }
  | Sim of { stdout : string; notes : string; prog_hash : int64; cached : bool }
  | Cell_done of { summary : string; prog_hash : int64; cached : bool }
  | Stats_r of stats
  | Bye
  | Batch_r of response list
  | Err of Diag.t list

(* --- canonical stdout rendering ---------------------------------------- *)

(* Exactly bisasim's print statements, as strings.  The daemon caches and
   replays these; the smoke tests diff them against the real CLI. *)

let render_functional ~show_output ~out ~ops ~ret =
  (if show_output then out ^ "\n" else "")
  ^ Printf.sprintf "%d dynamic operations, exit value %d\n" ops ret

let render_timing ~show_output ~out ~summary =
  (if show_output then out ^ "\n" else "") ^ summary ^ "\n"

(* --- structured retryable/terminal error markers ------------------------ *)

(* The retrying client must distinguish "try again" (busy server) from
   "your request is over" (deadline expired) without parsing prose, so
   both diagnostics are built — and recognized — here, by a stable
   message prefix.  Both ends of the wire share these definitions. *)

let busy_prefix = "server busy"
let deadline_prefix = "deadline expired"

let busy_diag ~inflight ~limit =
  Diag.error ~component:"bisad"
    (Printf.sprintf "%s: %d requests in flight (limit %d); retry with backoff"
       busy_prefix inflight limit)

let deadline_diag ~deadline ~ops =
  Diag.error ~component:"bisad"
    (Printf.sprintf
       "%s: request exceeded its %gs deadline after %d dynamic operations"
       deadline_prefix deadline ops)

let has_prefix prefix (d : Diag.t) =
  String.length d.Diag.message >= String.length prefix
  && String.sub d.Diag.message 0 (String.length prefix) = prefix

let is_busy_err = function
  | Err ds -> List.exists (has_prefix busy_prefix) ds
  | _ -> false

let is_deadline_err = function
  | Err ds -> List.exists (has_prefix deadline_prefix) ds
  | _ -> false

(* The daemon-side deadline for a request, if it carries one. *)
let request_deadline = function
  | Simulate { cfg; _ } | Cell { cfg; _ } -> cfg.deadline
  | Ping | Stats | Shutdown | Compile _ | Verify _ | Batch _ -> None

(* --- Diag codec --------------------------------------------------------- *)

let write_diag w (d : Diag.t) =
  Codec.W.int w
    (match d.severity with Diag.Error -> 0 | Diag.Warning -> 1 | Diag.Note -> 2);
  Codec.W.string w d.component;
  (match d.loc with
  | Diag.No_loc -> Codec.W.int w 0
  | Diag.Src { line; col } ->
    Codec.W.int w 1;
    Codec.W.int w line;
    Codec.W.int w col
  | Diag.Byte { offset; section } ->
    Codec.W.int w 2;
    Codec.W.int w offset;
    Codec.W.string w section);
  Codec.W.string w d.message

let read_diag ~section r : Diag.t =
  let severity =
    match Codec.R.int r with
    | 0 -> Diag.Error
    | 1 -> Diag.Warning
    | 2 -> Diag.Note
    | n -> fail_at ~offset:(Codec.R.pos r) ~section "unknown severity tag %d" n
  in
  let dcomponent = Codec.R.string r in
  let loc =
    match Codec.R.int r with
    | 0 -> Diag.No_loc
    | 1 ->
      let line = Codec.R.int r in
      let col = Codec.R.int r in
      Diag.Src { line; col }
    | 2 ->
      let offset = Codec.R.int r in
      let sec = Codec.R.string r in
      Diag.Byte { offset; section = sec }
    | n -> fail_at ~offset:(Codec.R.pos r) ~section "unknown location tag %d" n
  in
  let message = Codec.R.string r in
  { Diag.severity; component = dcomponent; loc; message }

let write_diags w ds =
  Codec.W.int w (List.length ds);
  List.iter (write_diag w) ds

let read_list ~section r read_one =
  let n = Codec.R.int r in
  if n < 0 then fail_at ~offset:(Codec.R.pos r) ~section "negative list length %d" n;
  List.init n (fun _ -> read_one r)

(* --- request codec ------------------------------------------------------ *)

let write_isa w = function Conv -> Codec.W.int w 0 | Block -> Codec.W.int w 1

let read_isa ~section r =
  match Codec.R.int r with
  | 0 -> Conv
  | 1 -> Block
  | n -> fail_at ~offset:(Codec.R.pos r) ~section "unknown isa tag %d" n

let write_src w = function
  | Source { src; libs } ->
    Codec.W.int w 0;
    Codec.W.string w src;
    Codec.W.int w (List.length libs);
    List.iter (Codec.W.string w) libs
  | Conv_bin b ->
    Codec.W.int w 1;
    Codec.W.string w b
  | Block_bin b ->
    Codec.W.int w 2;
    Codec.W.string w b

let read_src ~section r =
  match Codec.R.int r with
  | 0 ->
    let src = Codec.R.string r in
    let libs = read_list ~section r (fun r -> Codec.R.string r) in
    Source { src; libs }
  | 1 -> Conv_bin (Codec.R.string r)
  | 2 -> Block_bin (Codec.R.string r)
  | n -> fail_at ~offset:(Codec.R.pos r) ~section "unknown program-source tag %d" n

let write_sim_cfg w c =
  Codec.W.int w c.icache_kb;
  Codec.W.bool w c.perfect_pred;
  Codec.W.int w c.budget;
  Codec.W.option w Codec.W.int c.out_cap;
  Codec.W.option w Codec.W.float c.deadline

let read_sim_cfg r =
  let icache_kb = Codec.R.int r in
  let perfect_pred = Codec.R.bool r in
  let budget = Codec.R.int r in
  let out_cap = Codec.R.option r Codec.R.int in
  let deadline = Codec.R.option r Codec.R.float in
  { icache_kb; perfect_pred; budget; out_cap; deadline }

let write_exec w = function
  | Bisa_sim.Compile.Interp -> Codec.W.int w 0
  | Bisa_sim.Compile.Compiled -> Codec.W.int w 1

let read_exec ~section r =
  match Codec.R.int r with
  | 0 -> Bisa_sim.Compile.Interp
  | 1 -> Bisa_sim.Compile.Compiled
  | n -> fail_at ~offset:(Codec.R.pos r) ~section "unknown exec-backend tag %d" n

let write_mode w = function Timing -> Codec.W.int w 0 | Functional -> Codec.W.int w 1

let read_mode ~section r =
  match Codec.R.int r with
  | 0 -> Timing
  | 1 -> Functional
  | n -> fail_at ~offset:(Codec.R.pos r) ~section "unknown sim-mode tag %d" n

let req_section = "request"

let rec write_request ~depth w = function
  | Ping -> Codec.W.int w 0
  | Stats -> Codec.W.int w 1
  | Shutdown -> Codec.W.int w 2
  | Compile { src; isa } ->
    Codec.W.int w 3;
    write_src w src;
    write_isa w isa
  | Verify { src } ->
    Codec.W.int w 4;
    write_src w src
  | Simulate { src; isa; mode; exec; cfg; show_output } ->
    Codec.W.int w 5;
    write_src w src;
    write_isa w isa;
    write_mode w mode;
    write_exec w exec;
    write_sim_cfg w cfg;
    Codec.W.bool w show_output
  | Cell { bench; scale; isa; exec; cfg } ->
    Codec.W.int w 6;
    Codec.W.string w bench;
    Codec.W.option w Codec.W.int scale;
    write_isa w isa;
    write_exec w exec;
    write_sim_cfg w cfg
  | Batch reqs ->
    if depth > 0 then invalid_arg "Proto: nested Batch requests are not allowed";
    Codec.W.int w 7;
    Codec.W.int w (List.length reqs);
    List.iter (write_request ~depth:(depth + 1) w) reqs

let rec read_request ~depth r =
  let section = req_section in
  match Codec.R.int r with
  | 0 -> Ping
  | 1 -> Stats
  | 2 -> Shutdown
  | 3 ->
    let src = read_src ~section r in
    let isa = read_isa ~section r in
    Compile { src; isa }
  | 4 -> Verify { src = read_src ~section r }
  | 5 ->
    let src = read_src ~section r in
    let isa = read_isa ~section r in
    let mode = read_mode ~section r in
    let exec = read_exec ~section r in
    let cfg = read_sim_cfg r in
    let show_output = Codec.R.bool r in
    Simulate { src; isa; mode; exec; cfg; show_output }
  | 6 ->
    let bench = Codec.R.string r in
    let scale = Codec.R.option r Codec.R.int in
    let isa = read_isa ~section r in
    let exec = read_exec ~section r in
    let cfg = read_sim_cfg r in
    Cell { bench; scale; isa; exec; cfg }
  | 7 ->
    if depth > 0 then
      fail_at ~offset:(Codec.R.pos r) ~section "nested Batch request";
    Batch (read_list ~section r (read_request ~depth:(depth + 1)))
  | n -> fail_at ~offset:(Codec.R.pos r) ~section "unknown request tag %d" n

(* --- response codec ----------------------------------------------------- *)

let resp_section = "response"

let write_stats w s =
  Codec.W.int w s.served;
  Codec.W.int w s.sim_hits;
  Codec.W.int w s.sim_misses;
  Codec.W.int w s.artifacts;
  Codec.W.int w s.results;
  Codec.W.int w s.spooled;
  Codec.W.int w s.spool_skipped;
  Codec.W.int w s.inflight_peak;
  Codec.W.int w s.rss_kb

let read_stats r =
  let served = Codec.R.int r in
  let sim_hits = Codec.R.int r in
  let sim_misses = Codec.R.int r in
  let artifacts = Codec.R.int r in
  let results = Codec.R.int r in
  let spooled = Codec.R.int r in
  let spool_skipped = Codec.R.int r in
  let inflight_peak = Codec.R.int r in
  let rss_kb = Codec.R.int r in
  {
    served;
    sim_hits;
    sim_misses;
    artifacts;
    results;
    spooled;
    spool_skipped;
    inflight_peak;
    rss_kb;
  }

let rec write_response ~depth w = function
  | Pong { server } ->
    Codec.W.int w 0;
    Codec.W.string w server
  | Binary { isa; bytes; prog_hash } ->
    Codec.W.int w 1;
    write_isa w isa;
    Codec.W.string w bytes;
    Codec.W.i64 w prog_hash
  | Verdict { diags } ->
    Codec.W.int w 2;
    write_diags w diags
  | Sim { stdout; notes; prog_hash; cached } ->
    Codec.W.int w 3;
    Codec.W.string w stdout;
    Codec.W.string w notes;
    Codec.W.i64 w prog_hash;
    Codec.W.bool w cached
  | Cell_done { summary; prog_hash; cached } ->
    Codec.W.int w 4;
    Codec.W.string w summary;
    Codec.W.i64 w prog_hash;
    Codec.W.bool w cached
  | Stats_r s ->
    Codec.W.int w 5;
    write_stats w s
  | Bye -> Codec.W.int w 6
  | Batch_r rs ->
    if depth > 0 then invalid_arg "Proto: nested Batch_r responses are not allowed";
    Codec.W.int w 7;
    Codec.W.int w (List.length rs);
    List.iter (write_response ~depth:(depth + 1) w) rs
  | Err diags ->
    Codec.W.int w 8;
    write_diags w diags

let rec read_response ~depth r =
  let section = resp_section in
  match Codec.R.int r with
  | 0 -> Pong { server = Codec.R.string r }
  | 1 ->
    let isa = read_isa ~section r in
    let bytes = Codec.R.string r in
    let prog_hash = Codec.R.i64 r in
    Binary { isa; bytes; prog_hash }
  | 2 -> Verdict { diags = read_list ~section r (read_diag ~section) }
  | 3 ->
    let stdout = Codec.R.string r in
    let notes = Codec.R.string r in
    let prog_hash = Codec.R.i64 r in
    let cached = Codec.R.bool r in
    Sim { stdout; notes; prog_hash; cached }
  | 4 ->
    let summary = Codec.R.string r in
    let prog_hash = Codec.R.i64 r in
    let cached = Codec.R.bool r in
    Cell_done { summary; prog_hash; cached }
  | 5 -> Stats_r (read_stats r)
  | 6 -> Bye
  | 7 ->
    if depth > 0 then
      fail_at ~offset:(Codec.R.pos r) ~section "nested Batch_r response";
    Batch_r (read_list ~section r (read_response ~depth:(depth + 1)))
  | 8 -> Err (read_list ~section r (read_diag ~section))
  | n -> fail_at ~offset:(Codec.R.pos r) ~section "unknown response tag %d" n

(* --- payload encode/decode ---------------------------------------------- *)

(* Codec reader failures carry their offset only in the message; rewrap
   them (and the version check) so every payload rejection is a
   [component=proto] diagnostic located at the byte the reader reached —
   the contract the protocol fuzzer enforces. *)
let decoding ~section s f =
  let r = Codec.R.of_string s in
  match
    let v = Codec.R.string r in
    if v <> version then
      fail_at ~offset:0 ~section "version mismatch: peer speaks %S, this end %S" v
        version;
    let value = f r in
    if not (Codec.R.at_end r) then
      fail_at ~offset:(Codec.R.pos r) ~section "%d trailing bytes after payload"
        (String.length s - Codec.R.pos r);
    value
  with
  | value -> value
  | exception Diag.Fail d when d.Diag.component = "codec" ->
    raise
      (Diag.Fail
         {
           d with
           Diag.component;
           loc = Diag.at_byte ~offset:(Codec.R.pos r) ~section;
         })

let encode_request q =
  let w = Codec.W.create () in
  Codec.W.string w version;
  write_request ~depth:0 w q;
  Codec.W.contents w

let decode_request s = decoding ~section:req_section s (read_request ~depth:0)

let encode_response resp =
  let w = Codec.W.create () in
  Codec.W.string w version;
  write_response ~depth:0 w resp;
  Codec.W.contents w

let decode_response s = decoding ~section:resp_section s (read_response ~depth:0)

(* --- framing ------------------------------------------------------------ *)

(* A frame is a 4-byte big-endian payload length followed by the payload.
   The length is validated before anything is allocated. *)

let frame_section = "frame"

let check_frame_len ~offset n =
  if n < 0 || n > max_frame then
    fail_at ~offset ~section:frame_section
      "frame length %d out of range (max %d)" n max_frame

let frame payload =
  let n = String.length payload in
  check_frame_len ~offset:0 n;
  let b = Bytes.create (4 + n) in
  Bytes.set_int32_be b 0 (Int32.of_int n);
  Bytes.blit_string payload 0 b 4 n;
  Bytes.unsafe_to_string b

(* Peel one complete frame off [buf] starting at [pos]; [None] means more
   bytes are needed.  A malformed length raises immediately — the caller
   must drop the connection, there is nothing to resynchronize on. *)
let peel_frame buf pos =
  let avail = Buffer.length buf - pos in
  if avail < 4 then None
  else begin
    let n = Int32.to_int (String.get_int32_be (Buffer.sub buf pos 4) 0) in
    check_frame_len ~offset:pos n;
    if avail < 4 + n then None else Some (Buffer.sub buf (pos + 4) n, pos + 4 + n)
  end

(* --- blocking frame IO (client side and tests) -------------------------- *)

let rec really_write fd s pos len =
  if len > 0 then begin
    let n = Unix.write_substring fd s pos len in
    really_write fd s (pos + n) (len - n)
  end

let write_frame fd payload =
  let f = frame payload in
  really_write fd f 0 (String.length f)

let read_exact fd n ~what =
  let b = Bytes.create n in
  let rec go pos =
    if pos >= n then Bytes.unsafe_to_string b
    else begin
      match Unix.read fd b pos (n - pos) with
      | 0 ->
        fail_at ~offset:pos ~section:frame_section
          "connection closed mid-%s (%d of %d bytes)" what pos n
      | k -> go (pos + k)
    end
  in
  go 0

(* [None] on a clean EOF before any header byte; raises on a torn frame. *)
let read_frame fd =
  let hdr = Bytes.create 4 in
  match Unix.read fd hdr 0 4 with
  | 0 -> None
  | k ->
    let rest =
      if k >= 4 then ""
      else read_exact fd (4 - k) ~what:"header"
    in
    let full = Bytes.sub_string hdr 0 k ^ rest in
    let n = Int32.to_int (String.get_int32_be full 0) in
    check_frame_len ~offset:0 n;
    Some (read_exact fd n ~what:"payload")
