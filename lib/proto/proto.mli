(** The bisad wire protocol: typed requests and responses, their binary
    codec, and the length-prefixed framing both ends speak.

    This is the shared vocabulary of the one-shot CLIs and the daemon:
    the CLI argument terms ({!Bisa_cli.Args}) build these request values,
    the daemon engine consumes them, and the render helpers reproduce the
    one-shot CLI's stdout byte for byte, so cached daemon replies can be
    diffed directly against [bisasim] output.

    Decode failures — framing or payload — raise {!Bisa_base.Diag.Fail}
    with component ["proto"] and a {!Bisa_base.Diag.loc} of
    [Byte {offset; section}] naming the byte the reader had reached, in
    the style of [Encode.Malformed]: malformed or truncated input yields
    a diagnostic, never a crash or a hang. *)

val version : string
(** Protocol version string, leading every payload. *)

val max_frame : int
(** Hard cap on payload length; the length prefix is validated against it
    before any allocation. *)

(** {1 Request and response values} *)

type isa = Conv | Block

val isa_name : isa -> string

type prog_src =
  | Source of { src : string; libs : string list }
      (** MiniC source text plus the workload's library functions. *)
  | Conv_bin of string  (** [bisac --emit conv-bin] image bytes. *)
  | Block_bin of string  (** [bisac --emit block-bin] image bytes. *)

type sim_cfg = {
  icache_kb : int;  (** 0 = perfect icache. *)
  perfect_pred : bool;
  budget : int;
  out_cap : int option;
  deadline : float option;
      (** Per-request wall-clock deadline in seconds: the daemon answers
          a request past it with a structured deadline [Err] (see
          {!deadline_diag}) instead of holding the connection.  Not part
          of the result-cache key — it bounds the wait, not the
          result. *)
}

val default_sim_cfg : sim_cfg
(** The one-shot CLI defaults: 16KB icache, real predictor, the default
    op budget, unbounded output retention. *)

val cache_of_kb : int -> Bisa_uarch.Cache.config option
(** [0] means a perfect (absent) icache; anything else is a 4-way,
    32B-line cache of that size.  The single definition behind both the
    CLIs' [--icache-kb] and the daemon's requests. *)

val to_config : sim_cfg -> Bisa_timing.Config.t
(** The one canonical [sim_cfg] -> {!Bisa_timing.Config.t} translation;
    its fingerprint is the configuration half of the daemon's cache
    key. *)

type sim_mode = Timing | Functional

type request =
  | Ping
  | Stats
  | Shutdown
  | Compile of { src : prog_src; isa : isa }
  | Verify of { src : prog_src }
      (** Verify every executable the source carries (both ISAs for MiniC
          source), like [bisasim --verify-only]. *)
  | Simulate of {
      src : prog_src;
      isa : isa;
      mode : sim_mode;
      exec : Bisa_sim.Compile.backend;
      cfg : sim_cfg;
      show_output : bool;
    }
  | Cell of {
      bench : string;  (** Built-in workload name. *)
      scale : int option;
      isa : isa;
      exec : Bisa_sim.Compile.backend;
      cfg : sim_cfg;
    }
  | Batch of request list
      (** Sharded across the daemon's worker pool; nesting is rejected at
          both ends. *)

type stats = {
  served : int;
  sim_hits : int;
  sim_misses : int;
  artifacts : int;
  results : int;
  spooled : int;
  spool_skipped : int;
      (** Unreadable spool entries skipped (and logged) at reload. *)
  inflight_peak : int;
  rss_kb : int;
}

type response =
  | Pong of { server : string }
  | Binary of { isa : isa; bytes : string; prog_hash : int64 }
  | Verdict of { diags : Bisa_base.Diag.t list }  (** [[]] = verify OK. *)
  | Sim of { stdout : string; notes : string; prog_hash : int64; cached : bool }
      (** [stdout] is byte-identical to the one-shot [bisasim] stdout for
          the same request; [notes] carries rendered machine-trap
          diagnostics the CLI would print to stderr. *)
  | Cell_done of { summary : string; prog_hash : int64; cached : bool }
  | Stats_r of stats
  | Bye
  | Batch_r of response list
  | Err of Bisa_base.Diag.t list

(** {1 Canonical stdout rendering}

    Exactly the one-shot CLI's print statements, as strings — the daemon
    caches and replays these, and the smoke tests diff them against the
    real [bisasim] binary. *)

val render_functional : show_output:bool -> out:string -> ops:int -> ret:int -> string
val render_timing : show_output:bool -> out:string -> summary:string -> string

(** {1 Structured retryable / terminal error markers}

    The retrying client must distinguish "try again" (busy server) from
    "your request is over" (deadline expired) without parsing prose;
    both diagnostics are built and recognized here, by a stable message
    prefix shared by both ends of the wire. *)

val busy_diag : inflight:int -> limit:int -> Bisa_base.Diag.t
(** The admission-control rejection: safe to retry with backoff. *)

val deadline_diag : deadline:float -> ops:int -> Bisa_base.Diag.t
(** The cooperative-deadline expiry: terminal, never retried. *)

val is_busy_err : response -> bool
val is_deadline_err : response -> bool

val request_deadline : request -> float option
(** The deadline a request carries, if any ([Simulate]/[Cell] only). *)

(** {1 Payload codec} *)

val encode_request : request -> string
(** Raises [Invalid_argument] on a nested [Batch] — a client bug, not a
    wire condition. *)

val decode_request : string -> request
val encode_response : response -> string
val decode_response : string -> response

val write_diag : Bisa_base.Codec.W.t -> Bisa_base.Diag.t -> unit
val read_diag : section:string -> Bisa_base.Codec.R.t -> Bisa_base.Diag.t

(** {1 Framing}

    A frame is a 4-byte big-endian payload length followed by the
    payload. *)

val frame : string -> string
(** Prepend the length prefix; raises on payloads beyond {!max_frame}. *)

val peel_frame : Buffer.t -> int -> (string * int) option
(** [peel_frame buf pos] returns the next complete payload starting at
    [pos] and the position after it, or [None] if more bytes are needed.
    Raises on a length prefix beyond {!max_frame} — the connection has
    nothing left to resynchronize on and must be dropped. *)

val write_frame : Unix.file_descr -> string -> unit

val read_frame : Unix.file_descr -> string option
(** Blocking read of one frame; [None] on a clean EOF before any header
    byte, raises on a torn frame or oversized length. *)
