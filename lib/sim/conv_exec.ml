module Insn = Bisa_isa.Insn
module Reg = Bisa_isa.Reg
module Conv_prog = Bisa_isa.Conv_prog

type term_kind = Kbr of bool | Kjmp | Kcall | Kret | Kjr | Khalt | Kfall

type packet = {
  start : int;
  count : int;
  mem_addrs : int array;
  term : term_kind;
  next : int;
}

type machine_trap = Wild_jump of int | Unaligned_access of int

type t = {
  prog : Conv_prog.t;
  regs : Regfile.t;
  mem : Memory.t;
  mutable pc : int;
  mutable halted : bool;
  mutable mtrap : machine_trap option;
  mutable dyn : int;
  mutable budget : int;
  sink : Output.Sink.sink;
}

exception Runaway of int

(* Structured rendering for the unified failure model. *)
let runaway_diag n =
  Bisa_base.Diag.errorf ~component:"sim.conv"
    "runaway execution: %d dynamic instructions exceeded the budget" n

let machine_trap_diag mt =
  Bisa_base.Diag.warning ~component:"sim.conv"
    (match mt with
    | Wild_jump pc ->
      Printf.sprintf "machine trap: control transferred to nonexistent instruction %d" pc
    | Unaligned_access a ->
      Printf.sprintf "machine trap: unaligned memory access at 0x%x" a)

(* Safety cap on packet length; real basic blocks are far shorter, and the
   timing model re-chunks to issue width anyway. *)
let packet_cap = 1024

let create (prog : Conv_prog.t) =
  let t =
    {
      prog;
      regs = Regfile.create ();
      mem = Memory.create ();
      pc = prog.entry;
      halted = false;
      mtrap = None;
      dyn = 0;
      budget = 2_000_000_000;
      sink = Output.Sink.create ();
    }
  in
  (* Preload the data segment. *)
  Array.iteri
    (fun i v -> if v <> 0 then Memory.store t.mem (prog.data_base + (i * 8)) v)
    prog.data;
  t

let halted t = t.halted
let machine_trap t = t.mtrap
let dyn_insns t = t.dyn
let set_budget t n = t.budget <- n
let set_out_cap t n = Output.Sink.set_cap t.sink n
let out_count t = Output.Sink.count t.sink
let out_hash t = Output.Sink.hash t.sink
let out_truncated t = Output.Sink.truncated t.sink

let output t =
  { Output.ret = Regfile.get_i t.regs Reg.rv; items = Output.Sink.items t.sink }

let read_mem t addr = Memory.load t.mem addr
let read_memf t addr = Memory.loadf t.mem addr

let step t =
  let n = Array.length t.prog.insns in
  if t.halted then None
  else if t.pc < 0 || t.pc >= n then begin
    (* Confinement: register-valued control flow (ret/jr) or a wild entry
       landed outside the program — an architected machine trap, not a
       crash.  Compiled programs never reach this. *)
    t.halted <- true;
    t.mtrap <- Some (Wild_jump t.pc);
    None
  end
  else begin
    let start = t.pc in
    let addrs = ref [] in
    let out item = Output.Sink.push t.sink item in
    let rec loop pc count =
      if count >= packet_cap then (Kfall, pc, count)
      else if pc < 0 || pc >= n then begin
        (* Fall-through ran off the program mid-packet. *)
        t.halted <- true;
        t.mtrap <- Some (Wild_jump pc);
        (Khalt, pc, count)
      end
      else begin
        let insn = t.prog.insns.(pc) in
        t.dyn <- t.dyn + 1;
        if t.dyn > t.budget then raise (Runaway t.dyn);
        match insn with
        | Insn.Op op ->
          let a = Opsem.exec ~regs:t.regs ~mem:t.mem ~sbuf:None ~out op in
          addrs := a :: !addrs;
          loop (pc + 1) (count + 1)
        | Insn.Br (c, s1, s2, target) ->
          addrs := -1 :: !addrs;
          let taken =
            Bisa_isa.Cmp.eval c (Regfile.get_i t.regs s1) (Regfile.get_i t.regs s2)
          in
          (Kbr taken, (if taken then target else pc + 1), count + 1)
        | Insn.Jmp target ->
          addrs := -1 :: !addrs;
          (Kjmp, target, count + 1)
        | Insn.Call target ->
          addrs := -1 :: !addrs;
          Regfile.set_i t.regs Reg.ra (pc + 1);
          (Kcall, target, count + 1)
        | Insn.Ret ->
          addrs := -1 :: !addrs;
          (Kret, Regfile.get_i t.regs Reg.ra, count + 1)
        | Insn.Jr r ->
          addrs := -1 :: !addrs;
          (Kjr, Regfile.get_i t.regs r, count + 1)
        | Insn.Halt ->
          addrs := -1 :: !addrs;
          t.halted <- true;
          (Khalt, pc, count + 1)
      end
    in
    match loop start 0 with
    | exception Memory.Unaligned a ->
      (* No atomicity to restore in the conventional machine: earlier
         instructions of the packet committed; the offender halts it. *)
      t.halted <- true;
      t.mtrap <- Some (Unaligned_access a);
      None
    | term, next, count ->
      (* Confine the packet's successor the same way: a wild target halts
         architecturally (presented as Khalt so the front end stops
         training on it). *)
      let term, next =
        if (not t.halted) && (next < 0 || next >= n) then begin
          t.halted <- true;
          t.mtrap <- Some (Wild_jump next);
          (Khalt, start)
        end
        else (term, next)
      in
      t.pc <- next;
      let mem_addrs = Array.make count (-1) in
      List.iteri (fun i a -> mem_addrs.(count - 1 - i) <- a) !addrs;
      Some { start; count; mem_addrs; term; next }
  end

let mtrap_save w = function
  | None -> Bisa_base.Codec.W.int w 0
  | Some (Wild_jump pc) ->
    Bisa_base.Codec.W.int w 1;
    Bisa_base.Codec.W.int w pc
  | Some (Unaligned_access a) ->
    Bisa_base.Codec.W.int w 2;
    Bisa_base.Codec.W.int w a

let mtrap_load r =
  match Bisa_base.Codec.R.int r with
  | 0 -> None
  | 1 -> Some (Wild_jump (Bisa_base.Codec.R.int r))
  | 2 -> Some (Unaligned_access (Bisa_base.Codec.R.int r))
  | k -> invalid_arg (Printf.sprintf "Conv_exec: bad machine-trap tag %d" k)

(* Checkpoint the full architectural state.  Only meaningful between
   [step]s — there is no intra-packet state to capture. *)
let save t w =
  Bisa_base.Codec.W.section w "conv_exec";
  Bisa_base.Codec.W.int w t.pc;
  Bisa_base.Codec.W.bool w t.halted;
  mtrap_save w t.mtrap;
  Bisa_base.Codec.W.int w t.dyn;
  Bisa_base.Codec.W.int w t.budget;
  Regfile.save t.regs w;
  Memory.save_state t.mem w;
  Output.Sink.save t.sink w

let load t r =
  Bisa_base.Codec.R.section r "conv_exec";
  t.pc <- Bisa_base.Codec.R.int r;
  t.halted <- Bisa_base.Codec.R.bool r;
  t.mtrap <- mtrap_load r;
  t.dyn <- Bisa_base.Codec.R.int r;
  t.budget <- Bisa_base.Codec.R.int r;
  Regfile.load t.regs r;
  Memory.load_state t.mem r;
  Output.Sink.load t.sink r

let run prog ?(budget = 2_000_000_000) () =
  let t = create prog in
  set_budget t budget;
  let rec go () = match step t with Some _ -> go () | None -> () in
  go ();
  (output t, dyn_insns t)
