(** Architectural register file: 32 integer + 32 float registers, with [r0]
    hardwired to zero. *)

type t

val ints : t -> int array
val flts : t -> float array
(** The backing arrays themselves, not copies: the compiled executor
    ({!Compile}) resolves register operands to direct array indices at
    compile time and reads/writes through these.  Mutating them is
    equivalent to {!set_i}/{!set_f} except that the [r0]-write drop and
    the int/float class check become the caller's obligation. *)

val create : unit -> t
val get_i : t -> Bisa_isa.Reg.t -> int
val set_i : t -> Bisa_isa.Reg.t -> int -> unit
val get_f : t -> Bisa_isa.Reg.t -> float
val set_f : t -> Bisa_isa.Reg.t -> float -> unit
val copy : t -> t

val blit : src:t -> dst:t -> unit
(** Overwrite [dst] with [src]'s contents (used for atomic-block shadow
    snapshots). *)

val save : t -> Bisa_base.Codec.W.t -> unit
val load : t -> Bisa_base.Codec.R.t -> unit
(** Checkpoint the full architectural register state. *)
