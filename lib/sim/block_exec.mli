(** Functional executor for the block-structured ISA.

    Executes one atomic block per step with all-or-nothing semantics: if a
    fault operation's condition evaluates true, every register write,
    store and print of the block is discarded and fetch is redirected to
    the fault's target (paper section 2).

    The executor is {e fetch-driven}: the caller (normally the timing
    simulator, acting as the branch predictor) may ask to execute any
    block in the variant group of the architecturally required successor —
    exactly the set a correct hardware implementation could reach — and
    the fault operations repair any divergence inside the group.  Calling
    {!step} without a fetch argument executes the representative, giving
    the canonical execution used for differential testing. *)

type step = {
  block : int;  (** the block that was executed *)
  ops_executed : int;  (** body elements evaluated (the firing fault included) *)
  mem_addrs : int array;  (** per body position: byte address or -1 *)
  squashed : bool;
  fault_pos : int option;
  next : int;  (** architectural next block *)
  dir_taken : bool option;  (** trap direction, when the terminator ran *)
}

type machine_trap =
  | Wild_jump of int  (** control transferred outside the program *)
  | Unaligned_access of int  (** byte address of a misaligned access *)
      (** Architected clean halts for behavior the static verifier cannot
          bound: register-valued control flow (returns, indirect jumps)
          landing outside the program, and runtime addresses that are not
          8-byte aligned.  The offending block's effects are discarded and
          the machine halts — never an exception.  Compiled programs never
          trap. *)

type t = {
  prog : Bisa_isa.Block_prog.t;
  regs : Regfile.t;
  shadow : Regfile.t;  (** snapshot at block start, for fault recovery *)
  mem : Memory.t;
  sbuf : Sbuf.t;
  mutable required : int;
  mutable halted : bool;
  mutable mtrap : machine_trap option;
  mutable dyn : int;
  mutable retired : int;
  mutable retired_blocks : int;
  mutable budget : int;
  sink : Output.Sink.sink;
}
(** The architectural state is concrete so {!Compile} (same library) can
    drive the identical record from threaded code: both backends share
    one state, so checkpoints, counters and output are backend-agnostic
    by construction.  Outside [lib/sim], treat the fields as read-only
    and go through the accessors below. *)

exception Runaway of int
exception Illegal_fetch of { required : int; requested : int }

val runaway_diag : int -> Bisa_base.Diag.t
val illegal_fetch_diag : required:int -> requested:int -> Bisa_base.Diag.t
(** Structured renderings of the executor exceptions for the unified
    failure model. *)

val machine_trap_diag : machine_trap -> Bisa_base.Diag.t
(** Warning-severity rendering of a machine trap (a trap is an outcome,
    not a failure). *)

val create : Bisa_isa.Block_prog.t -> t

val required : t -> int
(** The representative of the architecturally required next block. *)

val step : ?fetch:int -> t -> step option
(** Execute one block ([fetch] defaults to {!required}).  [None] once
    halted. *)

val halted : t -> bool

val machine_trap : t -> machine_trap option
(** Set iff the machine halted on a trap rather than a [Halt]. *)

val dyn_ops : t -> int
(** All operations executed, squashed work included. *)

val retired_ops : t -> int
(** Operations in committed blocks only. *)

val retired_blocks : t -> int
val output : t -> Output.t
val set_budget : t -> int -> unit

val set_out_cap : t -> int -> unit
(** Bound the number of retained output items (paper-scale runs would
    otherwise grow the output list without bound).  The running count and
    hash keep observing every item; see {!Output.Sink}. *)

val out_count : t -> int
val out_hash : t -> int64
val out_truncated : t -> bool

val save : t -> Bisa_base.Codec.W.t -> unit
val load : t -> Bisa_base.Codec.R.t -> unit
(** Checkpoint/restore the full architectural state.  Only meaningful
    between {!step}s; the restored executor must wrap the same program. *)

val read_mem : t -> int -> int
val read_memf : t -> int -> float
(** Inspect data memory (aligned byte address) — the differential oracle
    compares final data segments across executors. *)

val run : Bisa_isa.Block_prog.t -> ?budget:int -> unit -> Output.t * int
(** Canonical execution to halt; returns output and retired op count. *)
