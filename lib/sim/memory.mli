(** Simulated data memory: sparse, paged, word-addressed.

    Every address is byte-valued and must be 8-byte aligned.  Each word has
    an integer slot and (lazily allocated) a float slot; [storef]/[loadf]
    use the float side.  MiniC never type-puns through memory, so the dual
    representation is exact — this is what lets the simulator keep
    OCaml-native integer semantics while storing full-precision floats. *)

type t

exception Unaligned of int
(** Raised (with the byte address) by every access whose address is not
    8-byte aligned.  The executors catch it and turn it into an
    architected machine trap — a clean halt — rather than letting it
    escape as a crash. *)

val create : unit -> t
val load : t -> int -> int
val store : t -> int -> int -> unit
val loadf : t -> int -> float
val storef : t -> int -> float -> unit
val footprint_words : t -> int
(** Number of words in touched pages (for diagnostics). *)

val save_state : t -> Bisa_base.Codec.W.t -> unit
val load_state : t -> Bisa_base.Codec.R.t -> unit
(** Checkpoint the touched pages (ascending key order, so equal memory
    states snapshot to identical bytes); [load] replaces the contents. *)
