(* 4096 words (32KB) per page. *)
let page_bits = 12
let page_words = 1 lsl page_bits
let page_mask = page_words - 1

type page = { ints : int array; mutable flts : float array option }

type t = { pages : (int, page) Hashtbl.t }

let create () = { pages = Hashtbl.create 64 }

exception Unaligned of int

let word_index addr =
  if addr land 7 <> 0 then raise (Unaligned addr);
  addr lsr 3

let page_of t wi =
  let key = wi lsr page_bits in
  match Hashtbl.find_opt t.pages key with
  | Some p -> p
  | None ->
    let p = { ints = Array.make page_words 0; flts = None } in
    Hashtbl.add t.pages key p;
    p

let load t addr =
  let wi = word_index addr in
  (page_of t wi).ints.(wi land page_mask)

let store t addr v =
  let wi = word_index addr in
  (page_of t wi).ints.(wi land page_mask) <- v

let flts_of p =
  match p.flts with
  | Some a -> a
  | None ->
    let a = Array.make page_words 0.0 in
    p.flts <- Some a;
    a

let loadf t addr =
  let wi = word_index addr in
  let p = page_of t wi in
  match p.flts with Some a -> a.(wi land page_mask) | None -> 0.0

let storef t addr v =
  let wi = word_index addr in
  (flts_of (page_of t wi)).(wi land page_mask) <- v

let footprint_words t = Hashtbl.length t.pages * page_words
