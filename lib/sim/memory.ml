(* 4096 words (32KB) per page. *)
let page_bits = 12
let page_words = 1 lsl page_bits
let page_mask = page_words - 1

type page = { ints : int array; mutable flts : float array option }

(* One-entry page cache in front of the hashtable: workloads touch the
   same page for long runs, and a hashtable probe per access (int hash,
   bucket walk, a [Some] allocation) would otherwise dominate the cost
   of simulated loads and stores.  [cached_key] starts at a sentinel no
   real key can take (keys are word indices shifted right, so they are
   small non-negatives), guarding the shared dummy page. *)
type t = {
  pages : (int, page) Hashtbl.t;
  mutable cached_key : int;
  mutable cached : page;
}

let no_page = { ints = [||]; flts = None }

let create () = { pages = Hashtbl.create 64; cached_key = min_int; cached = no_page }

exception Unaligned of int

let word_index addr =
  if addr land 7 <> 0 then raise (Unaligned addr);
  addr lsr 3

let page_of t wi =
  let key = wi lsr page_bits in
  if key = t.cached_key then t.cached
  else begin
    let p =
      match Hashtbl.find_opt t.pages key with
      | Some p -> p
      | None ->
        let p = { ints = Array.make page_words 0; flts = None } in
        Hashtbl.add t.pages key p;
        p
    in
    t.cached_key <- key;
    t.cached <- p;
    p
  end

(* [wi land page_mask] < page_words by construction, so the bounds
   check would always pass — these accesses sit on the simulator's
   hottest path. *)
let load t addr =
  let wi = word_index addr in
  Array.unsafe_get (page_of t wi).ints (wi land page_mask)

let store t addr v =
  let wi = word_index addr in
  Array.unsafe_set (page_of t wi).ints (wi land page_mask) v

let flts_of p =
  match p.flts with
  | Some a -> a
  | None ->
    let a = Array.make page_words 0.0 in
    p.flts <- Some a;
    a

let loadf t addr =
  let wi = word_index addr in
  let p = page_of t wi in
  match p.flts with
  | Some a -> Array.unsafe_get a (wi land page_mask)
  | None -> 0.0

let storef t addr v =
  let wi = word_index addr in
  Array.unsafe_set (flts_of (page_of t wi)) (wi land page_mask) v

let footprint_words t = Hashtbl.length t.pages * page_words

(* Pages are checkpointed in ascending key order so equal memory states
   produce identical snapshot bytes regardless of insertion history. *)
let save_state t w =
  Bisa_base.Codec.W.section w "memory";
  let keys = Hashtbl.fold (fun k _ acc -> k :: acc) t.pages [] in
  let keys = List.sort compare keys in
  Bisa_base.Codec.W.int w (List.length keys);
  List.iter
    (fun key ->
      let p = Hashtbl.find t.pages key in
      Bisa_base.Codec.W.int w key;
      Bisa_base.Codec.W.int_array w p.ints;
      Bisa_base.Codec.W.option w Bisa_base.Codec.W.float_array p.flts)
    keys

let load_state t r =
  Bisa_base.Codec.R.section r "memory";
  Hashtbl.reset t.pages;
  t.cached_key <- min_int;
  t.cached <- no_page;
  let n = Bisa_base.Codec.R.int r in
  for _ = 1 to n do
    let key = Bisa_base.Codec.R.int r in
    let ints = Bisa_base.Codec.R.int_array r in
    let flts = Bisa_base.Codec.R.option r Bisa_base.Codec.R.float_array in
    if Array.length ints <> page_words then invalid_arg "Memory.load: page size mismatch";
    Hashtbl.add t.pages key { ints; flts }
  done
