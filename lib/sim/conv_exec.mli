(** Functional executor for the conventional ISA.

    Drives the program one {e fetch packet} (dynamic basic block) at a
    time: a run of instructions ending at the first control instruction.
    Each packet records everything the timing model needs — memory
    addresses, the control outcome, the successor pc — so the timing
    simulator replays the correct path without re-deciding semantics. *)

type term_kind =
  | Kbr of bool  (** conditional branch; payload = taken? *)
  | Kjmp
  | Kcall
  | Kret
  | Kjr
  | Khalt
  | Kfall  (** packet hit the safety cap without a control instruction *)

type packet = {
  start : int;  (** index of the packet's first instruction *)
  count : int;  (** instructions in the packet, terminator included *)
  mem_addrs : int array;  (** per position: touched byte address or -1 *)
  term : term_kind;
  next : int;  (** index of the next instruction to execute *)
}

type machine_trap =
  | Wild_jump of int  (** control transferred outside the program *)
  | Unaligned_access of int  (** byte address of a misaligned access *)
      (** Architected clean halts for behavior the static verifier cannot
          bound — see {!Bisa_sim.Block_exec.machine_trap}.  Compiled
          programs never trap. *)

type t = {
  prog : Bisa_isa.Conv_prog.t;
  regs : Regfile.t;
  mem : Memory.t;
  mutable pc : int;
  mutable halted : bool;
  mutable mtrap : machine_trap option;
  mutable dyn : int;
  mutable budget : int;
  sink : Output.Sink.sink;
}
(** Concrete for the same reason as {!Block_exec.t}: the compiled
    executor ({!Compile}) mutates the identical record, so state,
    checkpoints and counters are shared across backends. *)

exception Runaway of int

val runaway_diag : int -> Bisa_base.Diag.t
(** Structured rendering of {!Runaway} for the unified failure model. *)

val machine_trap_diag : machine_trap -> Bisa_base.Diag.t
(** Warning-severity rendering of a machine trap. *)

val packet_cap : int
(** Safety cap on packet length; a packet reaching it ends in {!Kfall}. *)

val create : Bisa_isa.Conv_prog.t -> t
val step : t -> packet option
(** [None] once halted.  Raises {!Runaway} past the instruction budget. *)

val halted : t -> bool

val machine_trap : t -> machine_trap option
(** Set iff the machine halted on a trap rather than a [Halt]. *)

val dyn_insns : t -> int
val output : t -> Output.t
val set_budget : t -> int -> unit
(** Default budget: 2 billion dynamic instructions. *)

val set_out_cap : t -> int -> unit
(** Bound the number of retained output items (paper-scale runs would
    otherwise grow the output list without bound).  The running count and
    hash keep observing every item; see {!Output.Sink}. *)

val out_count : t -> int
val out_hash : t -> int64
val out_truncated : t -> bool

val save : t -> Bisa_base.Codec.W.t -> unit
val load : t -> Bisa_base.Codec.R.t -> unit
(** Checkpoint/restore the full architectural state.  Only meaningful
    between {!step}s; the restored executor must wrap the same program. *)

val read_mem : t -> int -> int
val read_memf : t -> int -> float
(** Inspect data memory (aligned byte address) — the differential oracle
    compares final data segments across executors. *)

val run : Bisa_isa.Conv_prog.t -> ?budget:int -> unit -> Output.t * int
(** Convenience: execute to halt; returns output and dynamic instruction
    count. *)
