module Ablock = Bisa_isa.Ablock
module Block_prog = Bisa_isa.Block_prog
module Reg = Bisa_isa.Reg
module Cmp = Bisa_isa.Cmp

type step = {
  block : int;
  ops_executed : int;
  mem_addrs : int array;
  squashed : bool;
  fault_pos : int option;
  next : int;
  dir_taken : bool option;
}

type machine_trap = Wild_jump of int | Unaligned_access of int

type t = {
  prog : Block_prog.t;
  regs : Regfile.t;
  shadow : Regfile.t;  (** snapshot at block start, for fault recovery *)
  mem : Memory.t;
  sbuf : Sbuf.t;
  mutable required : int;
  mutable halted : bool;
  mutable mtrap : machine_trap option;
  mutable dyn : int;
  mutable retired : int;
  mutable retired_blocks : int;
  mutable budget : int;
  sink : Output.Sink.sink;
}

exception Runaway of int
exception Illegal_fetch of { required : int; requested : int }

(* Structured rendering for the unified failure model. *)
let runaway_diag n =
  Bisa_base.Diag.errorf ~component:"sim.block"
    "runaway execution: %d dynamic operations exceeded the budget" n

let illegal_fetch_diag ~required ~requested =
  Bisa_base.Diag.errorf ~component:"sim.block"
    "illegal fetch: block %d requested while architecture requires %d (or a group \
     variant)"
    requested required

let machine_trap_diag mt =
  Bisa_base.Diag.warning ~component:"sim.block"
    (match mt with
    | Wild_jump b ->
      Printf.sprintf "machine trap: control transferred to nonexistent block %d" b
    | Unaligned_access a ->
      Printf.sprintf "machine trap: unaligned memory access at 0x%x" a)

let create (prog : Block_prog.t) =
  let t =
    {
      prog;
      regs = Regfile.create ();
      shadow = Regfile.create ();
      mem = Memory.create ();
      sbuf = Sbuf.create ();
      required = prog.entry;
      halted = false;
      mtrap = None;
      dyn = 0;
      retired = 0;
      retired_blocks = 0;
      budget = 2_000_000_000;
      sink = Output.Sink.create ();
    }
  in
  Array.iteri
    (fun i v -> if v <> 0 then Memory.store t.mem (prog.data_base + (i * 8)) v)
    prog.data;
  t

let required t = t.required
let halted t = t.halted
let machine_trap t = t.mtrap
let dyn_ops t = t.dyn
let retired_ops t = t.retired
let retired_blocks t = t.retired_blocks
let set_budget t n = t.budget <- n
let set_out_cap t n = Output.Sink.set_cap t.sink n
let out_count t = Output.Sink.count t.sink
let out_hash t = Output.Sink.hash t.sink
let out_truncated t = Output.Sink.truncated t.sink

let output t =
  { Output.ret = Regfile.get_i t.regs Reg.rv; items = Output.Sink.items t.sink }

let read_mem t addr = Memory.load t.mem addr
let read_memf t addr = Memory.loadf t.mem addr

let snapshot_regs t = Regfile.blit ~src:t.regs ~dst:t.shadow
let restore_regs t = Regfile.blit ~src:t.shadow ~dst:t.regs

(* Architected clean halt: confinement for control or memory behavior the
   static verifier cannot bound (register-valued jump targets, runtime
   addresses).  Compiled programs never reach these paths; arbitrary
   verified-but-wild-at-runtime programs halt instead of crashing. *)
let trap_halt t mt =
  t.halted <- true;
  t.mtrap <- Some mt;
  None

let step ?fetch t =
  let nblocks = Array.length t.prog.blocks in
  if t.halted then None
  else if t.required < 0 || t.required >= nblocks then
    trap_halt t (Wild_jump t.required)
  else begin
    let b =
      match fetch with
      | None -> t.required
      | Some f ->
        if f = t.required || Block_prog.in_group t.prog ~rep:t.required f then f
        else raise (Illegal_fetch { required = t.required; requested = f })
    in
    if b < 0 || b >= nblocks then trap_halt t (Wild_jump b)
    else begin
    let blk = t.prog.blocks.(b) in
    let nelts = Array.length blk.Ablock.elts in
    let mem_addrs = Array.make nelts (-1) in
    snapshot_regs t;
    Sbuf.clear t.sbuf;
    let pending_out = ref [] in
    let out item = pending_out := item :: !pending_out in
    let fault_fired = ref None in
    let k = ref 0 in
    try
      while !fault_fired = None && !k < nelts do
        (match blk.Ablock.elts.(!k) with
        | Ablock.Op op ->
          mem_addrs.(!k) <-
            Opsem.exec ~regs:t.regs ~mem:t.mem ~sbuf:(Some t.sbuf) ~out op
        | Ablock.Fault (c, s1, s2, target) ->
          if Cmp.eval c (Regfile.get_i t.regs s1) (Regfile.get_i t.regs s2) then
            fault_fired := Some (!k, target));
        incr k
      done;
      match !fault_fired with
      | Some (pos, target) ->
        (* Suppress the whole block. *)
        restore_regs t;
        Sbuf.clear t.sbuf;
        t.dyn <- t.dyn + pos + 1;
        if t.dyn > t.budget then raise (Runaway t.dyn);
        if target < 0 || target >= nblocks then begin
          t.halted <- true;
          t.mtrap <- Some (Wild_jump target)
        end
        else t.required <- target;
        Some
          {
            block = b;
            ops_executed = pos + 1;
            mem_addrs;
            squashed = true;
            fault_pos = Some pos;
            next = target;
            dir_taken = None;
          }
      | None ->
        (* Terminator, then commit. *)
        let next, dir_taken =
          match blk.Ablock.term with
          | Ablock.Trap { cmp; rs1; rs2; taken; not_taken; _ } ->
            let dir = Cmp.eval cmp (Regfile.get_i t.regs rs1) (Regfile.get_i t.regs rs2) in
            ((if dir then taken else not_taken), Some dir)
          | Ablock.Goto l -> (l, None)
          | Ablock.Call { callee; ret_to } ->
            Regfile.set_i t.regs Reg.ra ret_to;
            (callee, None)
          | Ablock.Return -> (Regfile.get_i t.regs Reg.ra, None)
          | Ablock.Ijump r -> (Regfile.get_i t.regs r, None)
          | Ablock.Halt ->
            t.halted <- true;
            (b, None)
        in
        Sbuf.flush t.sbuf t.mem;
        List.iter (fun item -> Output.Sink.push t.sink item) (List.rev !pending_out);
        let size = nelts + 1 in
        t.dyn <- t.dyn + size;
        t.retired <- t.retired + size;
        t.retired_blocks <- t.retired_blocks + 1;
        if t.dyn > t.budget then raise (Runaway t.dyn);
        (* Confine register-valued control flow (returns, indirect jumps):
           a target outside the program is a machine trap, not a crash at
           the next fetch. *)
        if (not t.halted) && (next < 0 || next >= nblocks) then begin
          t.halted <- true;
          t.mtrap <- Some (Wild_jump next)
        end
        else if not t.halted then t.required <- next;
        Some
          {
            block = b;
            ops_executed = nelts;
            mem_addrs;
            squashed = false;
            fault_pos = None;
            next;
            dir_taken;
          }
    with Memory.Unaligned a ->
      (* Register writes are shadowed and unflushed stores buffered, so
         the offending block's effects are discarded and the machine
         halts cleanly. *)
      restore_regs t;
      Sbuf.clear t.sbuf;
      trap_halt t (Unaligned_access a)
    end
  end

let mtrap_save w = function
  | None -> Bisa_base.Codec.W.int w 0
  | Some (Wild_jump b) ->
    Bisa_base.Codec.W.int w 1;
    Bisa_base.Codec.W.int w b
  | Some (Unaligned_access a) ->
    Bisa_base.Codec.W.int w 2;
    Bisa_base.Codec.W.int w a

let mtrap_load r =
  match Bisa_base.Codec.R.int r with
  | 0 -> None
  | 1 -> Some (Wild_jump (Bisa_base.Codec.R.int r))
  | 2 -> Some (Unaligned_access (Bisa_base.Codec.R.int r))
  | k -> invalid_arg (Printf.sprintf "Block_exec: bad machine-trap tag %d" k)

(* Checkpoint the full architectural state.  Only meaningful between
   [step]s: the shadow register file and store buffer are intra-step
   scratch (snapshotted at block entry, cleared by commit or squash), so
   they carry nothing across steps and are not serialized. *)
let save t w =
  Bisa_base.Codec.W.section w "block_exec";
  Bisa_base.Codec.W.int w t.required;
  Bisa_base.Codec.W.bool w t.halted;
  mtrap_save w t.mtrap;
  Bisa_base.Codec.W.int w t.dyn;
  Bisa_base.Codec.W.int w t.retired;
  Bisa_base.Codec.W.int w t.retired_blocks;
  Bisa_base.Codec.W.int w t.budget;
  Regfile.save t.regs w;
  Memory.save_state t.mem w;
  Output.Sink.save t.sink w

let load t r =
  Bisa_base.Codec.R.section r "block_exec";
  t.required <- Bisa_base.Codec.R.int r;
  t.halted <- Bisa_base.Codec.R.bool r;
  t.mtrap <- mtrap_load r;
  t.dyn <- Bisa_base.Codec.R.int r;
  t.retired <- Bisa_base.Codec.R.int r;
  t.retired_blocks <- Bisa_base.Codec.R.int r;
  t.budget <- Bisa_base.Codec.R.int r;
  Regfile.load t.regs r;
  Memory.load_state t.mem r;
  Output.Sink.load t.sink r;
  Sbuf.clear t.sbuf

let run prog ?(budget = 2_000_000_000) () =
  let t = create prog in
  set_budget t budget;
  let rec go () = match step t with Some _ -> go () | None -> () in
  go ();
  (output t, retired_ops t)
