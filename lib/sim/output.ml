type item = Oint of int | Oflt of float

type t = { ret : int; items : item list }

let equal a b = a.ret = b.ret && a.items = b.items

let item_to_string = function
  | Oint v -> string_of_int v
  | Oflt v -> Printf.sprintf "%.17g" v

let to_string t =
  Printf.sprintf "ret=%d [%s]" t.ret (String.concat "; " (List.map item_to_string t.items))

(* Bounded accumulation for paper-scale streamed runs: past [cap] retained
   items the sink keeps only the running count and a rolling content hash,
   so a 100M-op run's output costs O(cap) memory while interrupted and
   uninterrupted runs can still be compared digest-for-digest. *)
module Sink = struct
  type sink = {
    mutable cap : int;
    mutable kept_rev : item list;
    mutable kept : int;
    mutable count : int;
    mutable hash : int64;
  }

  let fnv_prime = 0x100000001B3L

  let create () = { cap = max_int; kept_rev = []; kept = 0; count = 0; hash = 0xCBF29CE484222325L }

  let set_cap t cap =
    if cap < 0 then invalid_arg "Output.Sink.set_cap: negative cap";
    t.cap <- cap

  let mix t bits =
    t.hash <- Int64.mul (Int64.logxor t.hash bits) fnv_prime

  let push t item =
    t.count <- t.count + 1;
    (match item with
    | Oint v ->
      mix t 1L;
      mix t (Int64.of_int v)
    | Oflt v ->
      mix t 2L;
      mix t (Int64.bits_of_float v));
    if t.kept < t.cap then begin
      t.kept_rev <- item :: t.kept_rev;
      t.kept <- t.kept + 1
    end

  let count t = t.count
  let hash t = t.hash
  let truncated t = t.count > t.kept
  let items t = List.rev t.kept_rev

  let save t w =
    Bisa_base.Codec.W.section w "output";
    Bisa_base.Codec.W.int w t.cap;
    Bisa_base.Codec.W.int w t.count;
    Bisa_base.Codec.W.i64 w t.hash;
    Bisa_base.Codec.W.int w t.kept;
    List.iter
      (function
        | Oint v ->
          Bisa_base.Codec.W.int w 1;
          Bisa_base.Codec.W.int w v
        | Oflt v ->
          Bisa_base.Codec.W.int w 2;
          Bisa_base.Codec.W.float w v)
      t.kept_rev

  let load t r =
    Bisa_base.Codec.R.section r "output";
    t.cap <- Bisa_base.Codec.R.int r;
    t.count <- Bisa_base.Codec.R.int r;
    t.hash <- Bisa_base.Codec.R.i64 r;
    t.kept <- Bisa_base.Codec.R.int r;
    let rec go n acc =
      if n = 0 then acc
      else begin
        let item =
          match Bisa_base.Codec.R.int r with
          | 1 -> Oint (Bisa_base.Codec.R.int r)
          | 2 -> Oflt (Bisa_base.Codec.R.float r)
          | k -> invalid_arg (Printf.sprintf "Output.Sink.load: bad item tag %d" k)
        in
        go (n - 1) (item :: acc)
      end
    in
    (* kept_rev is stored newest-first and read back in that order. *)
    t.kept_rev <- List.rev (go t.kept [])
end
