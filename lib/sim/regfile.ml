module Reg = Bisa_isa.Reg

type t = { ints : int array; flts : float array }

let create () = { ints = Array.make Reg.count 0; flts = Array.make Reg.count 0.0 }
let ints t = t.ints
let flts t = t.flts

let get_i t r =
  match r with
  | Reg.Int i -> t.ints.(i)
  | Reg.Flt _ -> invalid_arg "Regfile.get_i: float register"

let set_i t r v =
  match r with
  | Reg.Int 0 -> ()
  | Reg.Int i -> t.ints.(i) <- v
  | Reg.Flt _ -> invalid_arg "Regfile.set_i: float register"

let get_f t r =
  match r with
  | Reg.Flt i -> t.flts.(i)
  | Reg.Int _ -> invalid_arg "Regfile.get_f: int register"

let set_f t r v =
  match r with
  | Reg.Flt i -> t.flts.(i) <- v
  | Reg.Int _ -> invalid_arg "Regfile.set_f: int register"

let copy t = { ints = Array.copy t.ints; flts = Array.copy t.flts }

let save t w =
  Bisa_base.Codec.W.section w "regfile";
  Bisa_base.Codec.W.int_array w t.ints;
  Bisa_base.Codec.W.float_array w t.flts

let load t r =
  Bisa_base.Codec.R.section r "regfile";
  let ints = Bisa_base.Codec.R.int_array r in
  let flts = Bisa_base.Codec.R.float_array r in
  if Array.length ints <> Reg.count || Array.length flts <> Reg.count then
    invalid_arg "Regfile.load: register count mismatch";
  Array.blit ints 0 t.ints 0 Reg.count;
  Array.blit flts 0 t.flts 0 Reg.count

let blit ~src ~dst =
  Array.blit src.ints 0 dst.ints 0 Reg.count;
  Array.blit src.flts 0 dst.flts 0 Reg.count
