(** Observable program output: the stream produced by [print]/[printf]
    operations plus the exit value.  The reference interpreter and both ISA
    executors must produce identical values — the toolchain's main
    correctness oracle. *)

type item = Oint of int | Oflt of float

type t = { ret : int; items : item list }

val equal : t -> t -> bool
val to_string : t -> string

(** Bounded output accumulation for paper-scale streamed runs.

    A sink retains at most [cap] items (default: unbounded) but always
    maintains the exact item count and a rolling FNV-style content hash,
    so memory stays O(cap) on a 100M-op run while two runs' outputs can
    still be compared digest-for-digest.  Both ISA executors write
    through a sink. *)
module Sink : sig
  type sink

  val create : unit -> sink
  (** Unbounded: every item is retained (seed-compatible behavior). *)

  val set_cap : sink -> int -> unit
  (** Retain at most [cap] items from now on; counting and hashing are
      unaffected.  Raises [Invalid_argument] on a negative cap. *)

  val push : sink -> item -> unit
  val count : sink -> int
  val hash : sink -> int64
  val truncated : sink -> bool
  (** True once items beyond the cap have been dropped. *)

  val items : sink -> item list
  (** The retained items, oldest first. *)

  val save : sink -> Bisa_base.Codec.W.t -> unit
  val load : sink -> Bisa_base.Codec.R.t -> unit
end
