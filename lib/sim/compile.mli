(** Threaded-code compilation of the functional executors.

    The interpreted executors ({!Block_exec.step}, {!Conv_exec.step})
    dispatch on instruction structure and build four register-file
    partial applications per operation — that dispatch and allocation is
    essentially the whole cost of functional simulation.  This module
    removes it: each verified block (and each conventional basic region)
    is closed, once per program, into a chain of specialized OCaml
    closures with opcodes, operand {e indices}, literals and fault slots
    baked in.  Steady-state execution walks the chain by tail calls and
    allocates only the per-step record the timing model consumes.

    {2 Equivalence by construction}

    A compiled executor does not carry its own state: {!Block.bind} /
    {!Conv.bind} attach the closure chains to an existing
    {!Block_exec.t} / {!Conv_exec.t} record and mutate exactly the same
    registers, memory, counters and output sink the interpreter would.
    Checkpoints taken under either backend therefore restore under the
    other, counters and outputs agree bit-for-bit, and the differential
    oracle ({!Bisa_check}) can compare the two backends step by step.
    Machine traps ([Wild_jump], [Unaligned_access]) compile to the same
    architected clean halts — never OCaml exceptions — and {!Runaway} /
    {!Illegal_fetch} are raised at the interpreter's exact program
    points.

    {2 Witness-gated compilation}

    {!Block.compile} / {!Conv.compile} accept only the [private] witness
    types of {!Bisa_verify.Verify}: an unverified program cannot be
    compiled without going through the verifier or the explicitly-named
    [_trusted] escape hatch (mirroring {!Bisa_timing.Predecode}).  The
    trusted path stays exactly equivalent even on class-malformed
    programs: any operand whose register class contradicts the
    operation's semantics compiles to a fallback closure that reproduces
    the interpreter's register-file exception verbatim. *)

type backend = Interp | Compiled

val backend_to_string : backend -> string
val backend_of_string : string -> backend option
val backends : (string * backend) list
(** CLI enumeration for [--exec]. *)

module Block : sig
  type code
  (** Immutable per-program closure chains.  Compiled once, shareable
      across bindings and worker domains (the {!Bisa_experiments}
      harness memoizes one per program). *)

  val compile : Bisa_verify.Verify.verified_block_prog -> code
  val compile_trusted : Bisa_isa.Block_prog.t -> code
  val prog : code -> Bisa_isa.Block_prog.t

  type t
  (** [code] bound to one executor's architectural state. *)

  val bind : code -> Block_exec.t -> t
  (** Raises [Invalid_argument] unless the executor wraps the program
      the code was compiled from. *)

  val exec : t -> Block_exec.t
  (** The underlying state — output, counters, traps, save/load all go
      through the ordinary {!Block_exec} accessors. *)

  val step : ?fetch:int -> t -> Block_exec.step option
  (** Drop-in replacement for {!Block_exec.step}: same step records,
      same traps, same exceptions, same state evolution. *)

  val step_into : fetch:int -> t -> int
  (** Zero-allocation [step] for the timing pipelines' fast path: the
      same state evolution, but the step lands in mutable fields read
      through the [last_*] accessors instead of a fresh record.  Returns
      [-1] exactly where [step] returns [None], [0] for a committed
      block, [1] for a fault squash.  Results are valid until the next
      call; [last_addrs] slots of non-memory ops carry stale values, so
      consumers must gate address reads on the predecoded memory kind
      (the engine does). *)

  val last_block : t -> int
  val last_ops : t -> int
  (** [ops_executed] of the last [step_into] (body elements only). *)

  val last_addrs : t -> int array

  val last_dir : t -> int
  (** Trap direction of the last committed [step_into]:
      [-1] none / [0] not taken / [1] taken. *)

  val run : ?budget:int -> code -> Output.t * int
  (** Canonical execution to halt on a fresh state; returns output and
      retired op count (mirrors {!Block_exec.run}). *)
end

module Conv : sig
  type code

  val compile : Bisa_verify.Verify.verified_conv_prog -> code
  val compile_trusted : Bisa_isa.Conv_prog.t -> code
  val prog : code -> Bisa_isa.Conv_prog.t

  type t

  val bind : code -> Conv_exec.t -> t
  val exec : t -> Conv_exec.t

  val step : t -> Conv_exec.packet option
  (** Drop-in replacement for {!Conv_exec.step}.  Packets carry fresh
      [mem_addrs] arrays (the conventional pipeline's stream retains
      packets across steps). *)

  val step_into : t -> bool
  (** Zero-allocation [step] for the conventional pipeline's fast path:
      the same state evolution, but the packet lands in mutable fields
      read through the [last_*] accessors instead of a fresh record.
      Returns [false] exactly where [step] returns [None].  Results —
      including the scratch [last_addrs] array — are only valid until
      the next call. *)

  val last_start : t -> int
  val last_count : t -> int
  val last_term : t -> Conv_exec.term_kind
  val last_next : t -> int
  val last_addrs : t -> int array

  val run : ?budget:int -> code -> Output.t * int
  (** Mirrors {!Conv_exec.run}: returns output and dynamic instruction
      count. *)
end
