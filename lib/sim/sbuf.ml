(* Flat append-only store buffer: entries live in parallel arrays in
   program order, so a block's stores cost no allocation at all in steady
   state.  Loads scan newest-first (backwards); a cross-typed hit keeps
   the historical semantics of the list representation: the int view of a
   buffered float store is 0, and vice versa. *)
type t = {
  mutable kind : Bytes.t; (* '\000' = int entry, '\001' = float entry *)
  mutable addr : int array;
  mutable ival : int array;
  mutable fval : float array;
  mutable n : int;
}

let init_cap = 16

let create () =
  {
    kind = Bytes.make init_cap '\000';
    addr = Array.make init_cap 0;
    ival = Array.make init_cap 0;
    fval = Array.make init_cap 0.0;
    n = 0;
  }

let clear t = t.n <- 0

let grow t =
  let cap = Array.length t.addr in
  let kind = Bytes.make (2 * cap) '\000' in
  Bytes.blit t.kind 0 kind 0 cap;
  t.kind <- kind;
  let addr = Array.make (2 * cap) 0 in
  Array.blit t.addr 0 addr 0 cap;
  t.addr <- addr;
  let ival = Array.make (2 * cap) 0 in
  Array.blit t.ival 0 ival 0 cap;
  t.ival <- ival;
  let fval = Array.make (2 * cap) 0.0 in
  Array.blit t.fval 0 fval 0 cap;
  t.fval <- fval

let store t addr v =
  if t.n = Array.length t.addr then grow t;
  let i = t.n in
  Bytes.unsafe_set t.kind i '\000';
  Array.unsafe_set t.addr i addr;
  Array.unsafe_set t.ival i v;
  t.n <- i + 1

let storef t addr v =
  if t.n = Array.length t.addr then grow t;
  let i = t.n in
  Bytes.unsafe_set t.kind i '\001';
  Array.unsafe_set t.addr i addr;
  Array.unsafe_set t.fval i v;
  t.n <- i + 1

let load t mem addr =
  let rec scan i =
    if i < 0 then Memory.load mem addr
    else if Array.unsafe_get t.addr i = addr then
      if Bytes.unsafe_get t.kind i = '\000' then Array.unsafe_get t.ival i
      else 0 (* int view of a float store *)
    else scan (i - 1)
  in
  scan (t.n - 1)

let loadf t mem addr =
  let rec scan i =
    if i < 0 then Memory.loadf mem addr
    else if Array.unsafe_get t.addr i = addr then
      if Bytes.unsafe_get t.kind i = '\001' then Array.unsafe_get t.fval i
      else 0.0 (* float view of an int store *)
    else scan (i - 1)
  in
  scan (t.n - 1)

let flush t mem =
  for i = 0 to t.n - 1 do
    if Bytes.unsafe_get t.kind i = '\000' then
      Memory.store mem (Array.unsafe_get t.addr i) (Array.unsafe_get t.ival i)
    else Memory.storef mem (Array.unsafe_get t.addr i) (Array.unsafe_get t.fval i)
  done;
  t.n <- 0

let size t = t.n
