(* Threaded-code compilation of the functional executors: each block (and
   each conventional instruction) becomes one specialized closure that
   tail-calls its successor, with operand indices and literals resolved at
   compile time.  The chains mutate the interpreter's own state records
   (Block_exec.t / Conv_exec.t), so every observable — registers, memory,
   output sink, counters, traps, checkpoints — is shared with the
   interpreter by construction.  Where the interpreter would raise
   (Runaway, Illegal_fetch, register-class Invalid_argument on trusted
   malformed input), the compiled path raises at the same program point;
   where it traps (Wild_jump, Unaligned_access), the compiled path traps. *)

module Op = Bisa_isa.Op
module Cmp = Bisa_isa.Cmp
module Reg = Bisa_isa.Reg
module Ablock = Bisa_isa.Ablock
module Insn = Bisa_isa.Insn
module Block_prog = Bisa_isa.Block_prog
module Conv_prog = Bisa_isa.Conv_prog

type backend = Interp | Compiled

let backends = [ ("interp", Interp); ("compiled", Compiled) ]
let backend_to_string = function Interp -> "interp" | Compiled -> "compiled"

let backend_of_string s =
  match List.assoc_opt s backends with Some b -> Some b | None -> None

(* Comparators specialized to unboxed arguments: resolved once at compile
   time, so executing a fault/trap/select does one direct int compare. *)
let icmp : Cmp.t -> int -> int -> bool = function
  | Cmp.Eq -> fun a b -> a = b
  | Cmp.Ne -> fun a b -> a <> b
  | Cmp.Lt -> fun a b -> a < b
  | Cmp.Le -> fun a b -> a <= b
  | Cmp.Gt -> fun a b -> a > b
  | Cmp.Ge -> fun a b -> a >= b

(* Binary ALU function, literal-identical to Op.eval_alu arm by arm. *)
let alu_fn : Op.alu -> int -> int -> int = function
  | Op.Add -> ( + )
  | Op.Sub -> ( - )
  | Op.Mul -> ( * )
  | Op.Div -> fun a b -> if b = 0 then 0 else a / b
  | Op.Rem -> fun a b -> if b = 0 then 0 else a mod b
  | Op.And -> ( land )
  | Op.Or -> ( lor )
  | Op.Xor -> ( lxor )
  | Op.Sll -> fun a b -> a lsl (b land 63)
  | Op.Srl -> fun a b -> a lsr (b land 63)
  | Op.Sra -> fun a b -> a asr (b land 63)
  | Op.Set c ->
    let cmp = icmp c in
    fun a b -> if cmp a b then 1 else 0

(* Does every operand's register class match what the operation reads and
   writes?  Verified programs always pass (the verifier's reg-class
   rule); a trusted malformed program that fails here gets the generic
   Opsem fallback so it raises exactly as the interpreter would. *)
let ok_i = Reg.is_int
let ok_f r = not (Reg.is_int r)
let ok_srcv = function Op.R r -> Reg.is_int r | Op.I _ -> true

let classes_ok : Op.t -> bool = function
  | Op.Nop -> true
  | Op.Mov (d, s) -> Reg.is_int d = Reg.is_int s
  | Op.Li (d, _) -> ok_i d
  | Op.Lif (d, _) -> ok_f d
  | Op.Alu (_, d, s1, s2) -> ok_i d && ok_i s1 && ok_srcv s2
  | Op.Fpu (_, d, s1, s2) -> ok_f d && ok_f s1 && ok_f s2
  | Op.Fcmp (_, d, s1, s2) -> ok_i d && ok_f s1 && ok_f s2
  | Op.Itof (d, s) -> ok_f d && ok_i s
  | Op.Ftoi (d, s) -> ok_i d && ok_f s
  | Op.Select (_, d, s1, s2, t, f) ->
    ok_i s1 && ok_srcv s2 && Reg.is_int t = Reg.is_int d && Reg.is_int f = Reg.is_int d
  | Op.Load (d, b, _) -> ok_i d && ok_i b
  | Op.Loadf (d, b, _) -> ok_f d && ok_i b
  | Op.Store (s, b, _) -> ok_i s && ok_i b
  | Op.Storef (s, b, _) -> ok_f s && ok_i b
  | Op.Print s -> ok_i s
  | Op.Printf s -> ok_f s

let ix = Reg.index

(* Register-file accesses throughout use unsafe indexing: every index
   comes from [Reg.index] on a register built by [Reg]'s checked
   constructors ([Reg.int]/[Reg.flt]/[Reg.of_flat_index], which decode
   goes through), so it is < [Reg.count] — the length of both register
   arrays by construction.  The bounds checks these elide sit on the
   per-executed-instruction path of the compiled executor. *)

module Block = struct
  (* Per-binding scratch threaded through the chain.  [ints]/[flts]
     alias the executor's register file arrays; everything else is
     intra-step state the epilogue consumes. *)
  type st = {
    x : Block_exec.t;
    ints : int array;
    flts : float array;
    sints : int array;  (* shadow register file, same aliasing *)
    sflts : float array;
    mutable addrs : int array;  (* this step's mem_addrs, -1-initialized *)
    scratch : int array;  (* [step_into]'s reusable mem_addrs, max-sized *)
    mutable fpos : int;  (* firing fault position, -1 = none *)
    mutable ftarget : int;
    mutable next : int;  (* terminator's successor *)
    mutable dir : int;  (* trap direction: -1 none / 0 not-taken / 1 taken *)
    mutable r_block : int;  (* last [step_into] results *)
    mutable r_ops : int;
    mutable out_rev : Output.item list;  (* pending prints, newest first *)
  }

  type chain = st -> unit

  type code = {
    cprog : Block_prog.t;
    chains : chain array;  (* one per block *)
    sizes : int array;  (* body elements per block *)
    (* Registers each block can write (static), per class: the shadow
       save/restore only touches these instead of blitting the whole
       register file around every block. *)
    wr_int : int array array;
    wr_flt : int array array;
  }

  let prog c = c.cprog

  (* Fallback for class-malformed trusted programs: run the interpreter's
     own Opsem on this element so exceptions and evaluation order are
     identical by definition. *)
  let generic_op ~pos op (k : chain) : chain =
   fun st ->
    let x = st.x in
    st.addrs.(pos) <-
      Opsem.exec ~regs:x.Block_exec.regs ~mem:x.Block_exec.mem
        ~sbuf:(Some x.Block_exec.sbuf)
        ~out:(fun item -> st.out_rev <- item :: st.out_rev)
        op;
    k st

  let compile_op ~pos (op : Op.t) (k : chain) : chain =
    if not (classes_ok op) then generic_op ~pos op k
    else
      match op with
      | Op.Nop -> k
      | Op.Mov (d, s) when Reg.is_int d ->
        let d = ix d and s = ix s in
        if d = 0 then k
        else
          fun st ->
           Array.unsafe_set st.ints (d) ((Array.unsafe_get st.ints (s)));
           k st
      | Op.Mov (d, s) ->
        let d = ix d and s = ix s in
        fun st ->
          Array.unsafe_set st.flts (d) ((Array.unsafe_get st.flts (s)));
          k st
      | Op.Li (d, v) ->
        let d = ix d in
        if d = 0 then k
        else
          fun st ->
           Array.unsafe_set st.ints (d) (v);
           k st
      | Op.Lif (d, v) ->
        let d = ix d in
        fun st ->
          Array.unsafe_set st.flts (d) (v);
          k st
      | Op.Alu (a, d, s1, s2) -> (
        let d = ix d and s1 = ix s1 in
        if d = 0 then k
        else
          let fn = alu_fn a in
          match s2 with
          | Op.R r ->
            let s2 = ix r in
            fun st ->
              Array.unsafe_set st.ints (d) (fn (Array.unsafe_get st.ints (s1)) (Array.unsafe_get st.ints (s2)));
              k st
          | Op.I v ->
            fun st ->
              Array.unsafe_set st.ints (d) (fn (Array.unsafe_get st.ints (s1)) v);
              k st)
      | Op.Fpu (f, d, s1, s2) -> (
        let d = ix d and s1 = ix s1 and s2 = ix s2 in
        (* Inlined per arm: an indirect float->float call would box. *)
        match f with
        | Op.Fadd ->
          fun st ->
            Array.unsafe_set st.flts (d) ((Array.unsafe_get st.flts (s1)) +. (Array.unsafe_get st.flts (s2)));
            k st
        | Op.Fsub ->
          fun st ->
            Array.unsafe_set st.flts (d) ((Array.unsafe_get st.flts (s1)) -. (Array.unsafe_get st.flts (s2)));
            k st
        | Op.Fmul ->
          fun st ->
            Array.unsafe_set st.flts (d) ((Array.unsafe_get st.flts (s1)) *. (Array.unsafe_get st.flts (s2)));
            k st
        | Op.Fdiv ->
          fun st ->
            Array.unsafe_set st.flts (d) ((Array.unsafe_get st.flts (s1)) /. (Array.unsafe_get st.flts (s2)));
            k st)
      | Op.Fcmp (c, d, s1, s2) -> (
        let d = ix d and s1 = ix s1 and s2 = ix s2 in
        if d = 0 then k
        else
          match c with
          | Cmp.Eq ->
            fun st ->
              Array.unsafe_set st.ints (d) ((if (Array.unsafe_get st.flts (s1)) = (Array.unsafe_get st.flts (s2)) then 1 else 0));
              k st
          | Cmp.Ne ->
            fun st ->
              Array.unsafe_set st.ints (d) ((if (Array.unsafe_get st.flts (s1)) <> (Array.unsafe_get st.flts (s2)) then 1 else 0));
              k st
          | Cmp.Lt ->
            fun st ->
              Array.unsafe_set st.ints (d) ((if (Array.unsafe_get st.flts (s1)) < (Array.unsafe_get st.flts (s2)) then 1 else 0));
              k st
          | Cmp.Le ->
            fun st ->
              Array.unsafe_set st.ints (d) ((if (Array.unsafe_get st.flts (s1)) <= (Array.unsafe_get st.flts (s2)) then 1 else 0));
              k st
          | Cmp.Gt ->
            fun st ->
              Array.unsafe_set st.ints (d) ((if (Array.unsafe_get st.flts (s1)) > (Array.unsafe_get st.flts (s2)) then 1 else 0));
              k st
          | Cmp.Ge ->
            fun st ->
              Array.unsafe_set st.ints (d) ((if (Array.unsafe_get st.flts (s1)) >= (Array.unsafe_get st.flts (s2)) then 1 else 0));
              k st)
      | Op.Itof (d, s) ->
        let d = ix d and s = ix s in
        fun st ->
          Array.unsafe_set st.flts (d) (float_of_int (Array.unsafe_get st.ints (s)));
          k st
      | Op.Ftoi (d, s) ->
        let d = ix d and s = ix s in
        if d = 0 then k
        else
          fun st ->
           Array.unsafe_set st.ints (d) (int_of_float (Float.trunc (Array.unsafe_get st.flts (s))));
           k st
      | Op.Select (c, d, s1, s2, tr, fr) -> (
        let cmp = icmp c and s1 = ix s1 in
        let cond =
          match s2 with
          | Op.R r ->
            let s2 = ix r in
            fun st -> cmp (Array.unsafe_get st.ints (s1)) (Array.unsafe_get st.ints (s2))
          | Op.I v -> fun st -> cmp (Array.unsafe_get st.ints (s1)) v
        in
        if Reg.is_int d then
          let d = ix d and tr = ix tr and fr = ix fr in
          if d = 0 then k
          else
            fun st ->
             Array.unsafe_set st.ints (d) ((Array.unsafe_get st.ints (if cond st then tr else fr)));
             k st
        else
          let d = ix d and tr = ix tr and fr = ix fr in
          fun st ->
            Array.unsafe_set st.flts (d) ((Array.unsafe_get st.flts (if cond st then tr else fr)));
            k st)
      | Op.Load (d, b, off) ->
        let d = ix d and b = ix b in
        fun st ->
          let x = st.x in
          let addr = (Array.unsafe_get st.ints (b)) + off in
          let v = Sbuf.load x.Block_exec.sbuf x.Block_exec.mem addr in
          if d <> 0 then Array.unsafe_set st.ints (d) (v);
          st.addrs.(pos) <- addr;
          k st
      | Op.Loadf (d, b, off) ->
        let d = ix d and b = ix b in
        fun st ->
          let x = st.x in
          let addr = (Array.unsafe_get st.ints (b)) + off in
          Array.unsafe_set st.flts (d) (Sbuf.loadf x.Block_exec.sbuf x.Block_exec.mem addr);
          st.addrs.(pos) <- addr;
          k st
      | Op.Store (s, b, off) ->
        let s = ix s and b = ix b in
        fun st ->
          let addr = (Array.unsafe_get st.ints (b)) + off in
          Sbuf.store st.x.Block_exec.sbuf addr (Array.unsafe_get st.ints (s));
          st.addrs.(pos) <- addr;
          k st
      | Op.Storef (s, b, off) ->
        let s = ix s and b = ix b in
        fun st ->
          let addr = (Array.unsafe_get st.ints (b)) + off in
          Sbuf.storef st.x.Block_exec.sbuf addr (Array.unsafe_get st.flts (s));
          st.addrs.(pos) <- addr;
          k st
      | Op.Print s ->
        let s = ix s in
        fun st ->
          st.out_rev <- Output.Oint (Array.unsafe_get st.ints (s)) :: st.out_rev;
          k st
      | Op.Printf s ->
        let s = ix s in
        fun st ->
          st.out_rev <- Output.Oflt (Array.unsafe_get st.flts (s)) :: st.out_rev;
          k st

  (* A firing fault records its position and returns without calling the
     continuation — the rest of the block never executes, exactly like
     the interpreter's loop exit. *)
  let compile_elt ~pos (elt : int Ablock.elt) (k : chain) : chain =
    match elt with
    | Ablock.Op op -> compile_op ~pos op k
    | Ablock.Fault (c, s1, s2, target) ->
      if Reg.is_int s1 && Reg.is_int s2 then
        let cmp = icmp c and s1 = ix s1 and s2 = ix s2 in
        fun st ->
          if cmp (Array.unsafe_get st.ints (s1)) (Array.unsafe_get st.ints (s2)) then begin
            st.fpos <- pos;
            st.ftarget <- target
          end
          else k st
      else
        fun st ->
         (* class-malformed guard: reproduce the interpreter's raise *)
         if
           Cmp.eval c
             (Regfile.get_i st.x.Block_exec.regs s1)
             (Regfile.get_i st.x.Block_exec.regs s2)
         then begin
           st.fpos <- pos;
           st.ftarget <- target
         end
         else k st

  (* The terminator is the last link of the chain: it only runs when no
     fault fired, mirroring the interpreter's commit path. *)
  let compile_term ~self (term : int Ablock.terminator) : chain =
    match term with
    | Ablock.Trap { cmp; rs1; rs2; taken; not_taken; _ } ->
      if Reg.is_int rs1 && Reg.is_int rs2 then
        let c = icmp cmp and s1 = ix rs1 and s2 = ix rs2 in
        fun st ->
          if c (Array.unsafe_get st.ints (s1)) (Array.unsafe_get st.ints (s2)) then begin
            st.next <- taken;
            st.dir <- 1
          end
          else begin
            st.next <- not_taken;
            st.dir <- 0
          end
      else
        fun st ->
         let dir =
           Cmp.eval cmp
             (Regfile.get_i st.x.Block_exec.regs rs1)
             (Regfile.get_i st.x.Block_exec.regs rs2)
         in
         st.next <- (if dir then taken else not_taken);
         st.dir <- (if dir then 1 else 0)
    | Ablock.Goto l -> fun st -> st.next <- l
    | Ablock.Call { callee; ret_to } ->
      fun st ->
        (* r31: direct write, never the r0 drop (matches Regfile.set_i) *)
        Array.unsafe_set st.ints (Reg.index Reg.ra) (ret_to);
        st.next <- callee
    | Ablock.Return ->
      let ra = Reg.index Reg.ra in
      fun st -> st.next <- (Array.unsafe_get st.ints (ra))
    | Ablock.Ijump r ->
      if Reg.is_int r then
        let r = ix r in
        fun st -> st.next <- (Array.unsafe_get st.ints (r))
      else fun st -> st.next <- Regfile.get_i st.x.Block_exec.regs r
    | Ablock.Halt ->
      fun st ->
        st.x.Block_exec.halted <- true;
        st.next <- self

  let compile_block ~self (blk : int Ablock.t) : chain =
    let n = Array.length blk.Ablock.elts in
    let rec build pos =
      if pos = n then compile_term ~self blk.Ablock.term
      else compile_elt ~pos blk.Ablock.elts.(pos) (build (pos + 1))
    in
    build 0

  (* The registers a block can write, per class.  The Call terminator's
     link write is included even though it only runs on commit (when
     nothing is restored) — the list is a static over-approximation. *)
  let written_regs (blk : int Ablock.t) =
    let ints = ref [] and flts = ref [] in
    let add r =
      let i = Reg.index r in
      if Reg.is_int r then begin
        if not (List.mem i !ints) then ints := i :: !ints
      end
      else if not (List.mem i !flts) then flts := i :: !flts
    in
    Array.iter
      (function
        | Ablock.Op op -> List.iter add (Op.defs op)
        | Ablock.Fault _ -> ())
      blk.Ablock.elts;
    (match blk.Ablock.term with Ablock.Call _ -> add Reg.ra | _ -> ());
    (Array.of_list (List.rev !ints), Array.of_list (List.rev !flts))

  let compile_trusted (prog : Block_prog.t) =
    let written = Array.map written_regs prog.blocks in
    {
      cprog = prog;
      chains = Array.mapi (fun b blk -> compile_block ~self:b blk) prog.blocks;
      sizes = Array.map (fun blk -> Array.length blk.Ablock.elts) prog.blocks;
      wr_int = Array.map fst written;
      wr_flt = Array.map snd written;
    }

  let compile (w : Bisa_verify.Verify.verified_block_prog) =
    compile_trusted (w :> Block_prog.t)

  type t = { code : code; st : st }

  let exec t = t.st.x

  let bind code (x : Block_exec.t) =
    if not (code.cprog == x.Block_exec.prog || code.cprog = x.Block_exec.prog) then
      invalid_arg "Compile.Block.bind: code compiled from a different program";
    {
      code;
      st =
        {
          x;
          ints = Regfile.ints x.Block_exec.regs;
          flts = Regfile.flts x.Block_exec.regs;
          sints = Regfile.ints x.Block_exec.shadow;
          sflts = Regfile.flts x.Block_exec.shadow;
          addrs = [||];
          scratch =
            Array.make (max 1 (Array.fold_left max 0 code.sizes)) (-1);
          fpos = -1;
          ftarget = 0;
          next = 0;
          dir = -1;
          r_block = -1;
          r_ops = 0;
          out_rev = [];
        };
    }

  (* Shadow save/restore over the block's static written-register lists:
     equivalent to the interpreter's whole-file blits because registers
     the block cannot write never change between save and restore. *)
  let save_written st (wi : int array) (wf : int array) =
    for k = 0 to Array.length wi - 1 do
      let r = Array.unsafe_get wi k in
      Array.unsafe_set st.sints r (Array.unsafe_get st.ints r)
    done;
    for k = 0 to Array.length wf - 1 do
      let r = Array.unsafe_get wf k in
      Array.unsafe_set st.sflts r (Array.unsafe_get st.flts r)
    done

  let restore_written st (wi : int array) (wf : int array) =
    for k = 0 to Array.length wi - 1 do
      let r = Array.unsafe_get wi k in
      Array.unsafe_set st.ints r (Array.unsafe_get st.sints r)
    done;
    for k = 0 to Array.length wf - 1 do
      let r = Array.unsafe_get wf k in
      Array.unsafe_set st.flts r (Array.unsafe_get st.sflts r)
    done

  (* Mirrors Block_exec.step line for line; only the element loop is
     replaced by the chain call. *)
  let step ?fetch t =
    let st = t.st in
    let x = st.x in
    let nblocks = Array.length t.code.cprog.Block_prog.blocks in
    if x.Block_exec.halted then None
    else if x.Block_exec.required < 0 || x.Block_exec.required >= nblocks then begin
      x.Block_exec.halted <- true;
      x.Block_exec.mtrap <- Some (Block_exec.Wild_jump x.Block_exec.required);
      None
    end
    else begin
      let b =
        match fetch with
        | None -> x.Block_exec.required
        | Some f ->
          if
            f = x.Block_exec.required
            || Block_prog.in_group t.code.cprog ~rep:x.Block_exec.required f
          then f
          else
            raise
              (Block_exec.Illegal_fetch
                 { required = x.Block_exec.required; requested = f })
      in
      if b < 0 || b >= nblocks then begin
        x.Block_exec.halted <- true;
        x.Block_exec.mtrap <- Some (Block_exec.Wild_jump b);
        None
      end
      else begin
        let nelts = t.code.sizes.(b) in
        st.addrs <- Array.make nelts (-1);
        let wi = t.code.wr_int.(b) and wf = t.code.wr_flt.(b) in
        save_written st wi wf;
        Sbuf.clear x.Block_exec.sbuf;
        st.fpos <- -1;
        st.dir <- -1;
        st.out_rev <- [];
        try
          t.code.chains.(b) st;
          if st.fpos >= 0 then begin
            (* Fault fired: suppress the whole block. *)
            let pos = st.fpos and target = st.ftarget in
            restore_written st wi wf;
            Sbuf.clear x.Block_exec.sbuf;
            x.Block_exec.dyn <- x.Block_exec.dyn + pos + 1;
            if x.Block_exec.dyn > x.Block_exec.budget then
              raise (Block_exec.Runaway x.Block_exec.dyn);
            if target < 0 || target >= nblocks then begin
              x.Block_exec.halted <- true;
              x.Block_exec.mtrap <- Some (Block_exec.Wild_jump target)
            end
            else x.Block_exec.required <- target;
            Some
              {
                Block_exec.block = b;
                ops_executed = pos + 1;
                mem_addrs = st.addrs;
                squashed = true;
                fault_pos = Some pos;
                next = target;
                dir_taken = None;
              }
          end
          else begin
            (* Terminator already ran at the end of the chain; commit. *)
            let next = st.next in
            let dir_taken = if st.dir < 0 then None else Some (st.dir = 1) in
            Sbuf.flush x.Block_exec.sbuf x.Block_exec.mem;
            List.iter
              (fun item -> Output.Sink.push x.Block_exec.sink item)
              (List.rev st.out_rev);
            let size = nelts + 1 in
            x.Block_exec.dyn <- x.Block_exec.dyn + size;
            x.Block_exec.retired <- x.Block_exec.retired + size;
            x.Block_exec.retired_blocks <- x.Block_exec.retired_blocks + 1;
            if x.Block_exec.dyn > x.Block_exec.budget then
              raise (Block_exec.Runaway x.Block_exec.dyn);
            if (not x.Block_exec.halted) && (next < 0 || next >= nblocks) then begin
              x.Block_exec.halted <- true;
              x.Block_exec.mtrap <- Some (Block_exec.Wild_jump next)
            end
            else if not x.Block_exec.halted then x.Block_exec.required <- next;
            Some
              {
                Block_exec.block = b;
                ops_executed = nelts;
                mem_addrs = st.addrs;
                squashed = false;
                fault_pos = None;
                next;
                dir_taken;
              }
          end
        with Memory.Unaligned a ->
          restore_written st wi wf;
          Sbuf.clear x.Block_exec.sbuf;
          x.Block_exec.halted <- true;
          x.Block_exec.mtrap <- Some (Block_exec.Unaligned_access a);
          None
      end
    end

  (* Zero-allocation stepping for the timing pipelines' fast path:
     mirrors [step] state transition for state transition, but the
     epilogue lands in [r_block]/[r_ops]/[dir] and the reusable scratch
     address array instead of a fresh step record.  Returns [-1] where
     [step] returns [None], [0] for a committed block, [1] for a fault
     squash.  The scratch is only valid until the next call, and slots of
     non-memory ops keep stale values — sound for the engine, which gates
     every address read on the template's memory kind. *)
  let step_into ~fetch t =
    let st = t.st in
    let x = st.x in
    let nblocks = Array.length t.code.cprog.Block_prog.blocks in
    if x.Block_exec.halted then -1
    else if x.Block_exec.required < 0 || x.Block_exec.required >= nblocks
    then begin
      x.Block_exec.halted <- true;
      x.Block_exec.mtrap <- Some (Block_exec.Wild_jump x.Block_exec.required);
      -1
    end
    else begin
      let b =
        if
          fetch = x.Block_exec.required
          || Block_prog.in_group t.code.cprog ~rep:x.Block_exec.required fetch
        then fetch
        else
          raise
            (Block_exec.Illegal_fetch
               { required = x.Block_exec.required; requested = fetch })
      in
      if b < 0 || b >= nblocks then begin
        x.Block_exec.halted <- true;
        x.Block_exec.mtrap <- Some (Block_exec.Wild_jump b);
        -1
      end
      else begin
        let nelts = t.code.sizes.(b) in
        st.addrs <- st.scratch;
        let wi = t.code.wr_int.(b) and wf = t.code.wr_flt.(b) in
        save_written st wi wf;
        Sbuf.clear x.Block_exec.sbuf;
        st.fpos <- -1;
        st.dir <- -1;
        st.out_rev <- [];
        try
          t.code.chains.(b) st;
          if st.fpos >= 0 then begin
            let pos = st.fpos and target = st.ftarget in
            restore_written st wi wf;
            Sbuf.clear x.Block_exec.sbuf;
            x.Block_exec.dyn <- x.Block_exec.dyn + pos + 1;
            if x.Block_exec.dyn > x.Block_exec.budget then
              raise (Block_exec.Runaway x.Block_exec.dyn);
            if target < 0 || target >= nblocks then begin
              x.Block_exec.halted <- true;
              x.Block_exec.mtrap <- Some (Block_exec.Wild_jump target)
            end
            else x.Block_exec.required <- target;
            st.r_block <- b;
            st.r_ops <- pos + 1;
            st.dir <- -1;
            1
          end
          else begin
            let next = st.next in
            Sbuf.flush x.Block_exec.sbuf x.Block_exec.mem;
            List.iter
              (fun item -> Output.Sink.push x.Block_exec.sink item)
              (List.rev st.out_rev);
            let size = nelts + 1 in
            x.Block_exec.dyn <- x.Block_exec.dyn + size;
            x.Block_exec.retired <- x.Block_exec.retired + size;
            x.Block_exec.retired_blocks <- x.Block_exec.retired_blocks + 1;
            if x.Block_exec.dyn > x.Block_exec.budget then
              raise (Block_exec.Runaway x.Block_exec.dyn);
            if (not x.Block_exec.halted) && (next < 0 || next >= nblocks)
            then begin
              x.Block_exec.halted <- true;
              x.Block_exec.mtrap <- Some (Block_exec.Wild_jump next)
            end
            else if not x.Block_exec.halted then x.Block_exec.required <- next;
            st.r_block <- b;
            st.r_ops <- nelts;
            0
          end
        with Memory.Unaligned a ->
          restore_written st wi wf;
          Sbuf.clear x.Block_exec.sbuf;
          x.Block_exec.halted <- true;
          x.Block_exec.mtrap <- Some (Block_exec.Unaligned_access a);
          -1
      end
    end

  let last_block t = t.st.r_block
  let last_ops t = t.st.r_ops
  let last_addrs t = t.st.addrs
  let last_dir t = t.st.dir

  let run ?(budget = 2_000_000_000) code =
    let x = Block_exec.create code.cprog in
    Block_exec.set_budget x budget;
    let t = bind code x in
    let rec go () = match step t with Some _ -> go () | None -> () in
    go ();
    (Block_exec.output x, Block_exec.retired_ops x)
end

module Conv = struct
  type st = {
    x : Conv_exec.t;
    ints : int array;
    flts : float array;
    saddrs : int array;  (* packet_cap-sized scratch; packets copy out *)
    mutable count : int;
    mutable term : Conv_exec.term_kind;
    mutable next : int;
    mutable last_start : int;  (* start pc of the last [step_into] packet *)
    mutable fuel : int;  (* fast path only: remaining dyn budget,
                            exact at every thread entry and synced
                            before any faultable access, so the
                            Unaligned handler can reconstruct the
                            exact dyn count *)
  }

  type thread = st -> unit

  type code = {
    cprog : Conv_prog.t;
    threads : thread array;  (* one per pc, plus the off-the-end sentinel *)
    fast : (st -> unit) array;
        (* packet-free run-to-halt chains, same layout; the remaining
           dyn budget travels in [st.fuel] *)
  }

  let prog c = c.cprog
  let kbr_t = Conv_exec.Kbr true
  let kbr_f = Conv_exec.Kbr false

  (* Packet-cap check then budget charge, in the interpreter's order,
     before every instruction. *)
  let with_prologue pc (body : thread) : thread =
   fun st ->
    if st.count >= Conv_exec.packet_cap then begin
      st.term <- Conv_exec.Kfall;
      st.next <- pc
    end
    else begin
      let x = st.x in
      x.Conv_exec.dyn <- x.Conv_exec.dyn + 1;
      if x.Conv_exec.dyn > x.Conv_exec.budget then
        raise (Conv_exec.Runaway x.Conv_exec.dyn);
      body st
    end

  let generic_op op (k : thread) : thread =
   fun st ->
    let x = st.x in
    let a =
      Opsem.exec ~regs:x.Conv_exec.regs ~mem:x.Conv_exec.mem ~sbuf:None
        ~out:(fun item -> Output.Sink.push x.Conv_exec.sink item)
        op
    in
    st.saddrs.(st.count) <- a;
    st.count <- st.count + 1;
    k st

  (* Non-control ops record their slot (address or -1: the scratch array
     is reused across packets, so -1 must be written explicitly) and fall
     through to the next instruction's thread. *)
  let compile_op (op : Op.t) (k : thread) : thread =
    if not (classes_ok op) then generic_op op k
    else
      let pure (eff : thread) : thread =
       fun st ->
        st.saddrs.(st.count) <- -1;
        st.count <- st.count + 1;
        eff st;
        k st
      in
      match op with
      | Op.Nop ->
        fun st ->
          st.saddrs.(st.count) <- -1;
          st.count <- st.count + 1;
          k st
      | Op.Mov (d, s) when Reg.is_int d ->
        let d = ix d and s = ix s in
        if d = 0 then pure (fun _ -> ())
        else pure (fun st -> Array.unsafe_set st.ints (d) ((Array.unsafe_get st.ints (s))))
      | Op.Mov (d, s) ->
        let d = ix d and s = ix s in
        pure (fun st -> Array.unsafe_set st.flts (d) ((Array.unsafe_get st.flts (s))))
      | Op.Li (d, v) ->
        let d = ix d in
        if d = 0 then pure (fun _ -> ()) else pure (fun st -> Array.unsafe_set st.ints (d) (v))
      | Op.Lif (d, v) ->
        let d = ix d in
        pure (fun st -> Array.unsafe_set st.flts (d) (v))
      | Op.Alu (a, d, s1, s2) -> (
        let d = ix d and s1 = ix s1 in
        if d = 0 then pure (fun _ -> ())
        else
          let fn = alu_fn a in
          match s2 with
          | Op.R r ->
            let s2 = ix r in
            pure (fun st -> Array.unsafe_set st.ints (d) (fn (Array.unsafe_get st.ints (s1)) (Array.unsafe_get st.ints (s2))))
          | Op.I v -> pure (fun st -> Array.unsafe_set st.ints (d) (fn (Array.unsafe_get st.ints (s1)) v)))
      | Op.Fpu (f, d, s1, s2) -> (
        let d = ix d and s1 = ix s1 and s2 = ix s2 in
        match f with
        | Op.Fadd -> pure (fun st -> Array.unsafe_set st.flts (d) ((Array.unsafe_get st.flts (s1)) +. (Array.unsafe_get st.flts (s2))))
        | Op.Fsub -> pure (fun st -> Array.unsafe_set st.flts (d) ((Array.unsafe_get st.flts (s1)) -. (Array.unsafe_get st.flts (s2))))
        | Op.Fmul -> pure (fun st -> Array.unsafe_set st.flts (d) ((Array.unsafe_get st.flts (s1)) *. (Array.unsafe_get st.flts (s2))))
        | Op.Fdiv -> pure (fun st -> Array.unsafe_set st.flts (d) ((Array.unsafe_get st.flts (s1)) /. (Array.unsafe_get st.flts (s2)))))
      | Op.Fcmp (c, d, s1, s2) -> (
        let d = ix d and s1 = ix s1 and s2 = ix s2 in
        if d = 0 then pure (fun _ -> ())
        else
          match c with
          | Cmp.Eq ->
            pure (fun st -> Array.unsafe_set st.ints (d) ((if (Array.unsafe_get st.flts (s1)) = (Array.unsafe_get st.flts (s2)) then 1 else 0)))
          | Cmp.Ne ->
            pure (fun st ->
                Array.unsafe_set st.ints (d) ((if (Array.unsafe_get st.flts (s1)) <> (Array.unsafe_get st.flts (s2)) then 1 else 0)))
          | Cmp.Lt ->
            pure (fun st -> Array.unsafe_set st.ints (d) ((if (Array.unsafe_get st.flts (s1)) < (Array.unsafe_get st.flts (s2)) then 1 else 0)))
          | Cmp.Le ->
            pure (fun st ->
                Array.unsafe_set st.ints (d) ((if (Array.unsafe_get st.flts (s1)) <= (Array.unsafe_get st.flts (s2)) then 1 else 0)))
          | Cmp.Gt ->
            pure (fun st -> Array.unsafe_set st.ints (d) ((if (Array.unsafe_get st.flts (s1)) > (Array.unsafe_get st.flts (s2)) then 1 else 0)))
          | Cmp.Ge ->
            pure (fun st ->
                Array.unsafe_set st.ints (d) ((if (Array.unsafe_get st.flts (s1)) >= (Array.unsafe_get st.flts (s2)) then 1 else 0))))
      | Op.Itof (d, s) ->
        let d = ix d and s = ix s in
        pure (fun st -> Array.unsafe_set st.flts (d) (float_of_int (Array.unsafe_get st.ints (s))))
      | Op.Ftoi (d, s) ->
        let d = ix d and s = ix s in
        if d = 0 then pure (fun _ -> ())
        else pure (fun st -> Array.unsafe_set st.ints (d) (int_of_float (Float.trunc (Array.unsafe_get st.flts (s)))))
      | Op.Select (c, d, s1, s2, tr, fr) -> (
        let cmp = icmp c and s1 = ix s1 in
        let cond =
          match s2 with
          | Op.R r ->
            let s2 = ix r in
            fun st -> cmp (Array.unsafe_get st.ints (s1)) (Array.unsafe_get st.ints (s2))
          | Op.I v -> fun st -> cmp (Array.unsafe_get st.ints (s1)) v
        in
        if Reg.is_int d then
          let d = ix d and tr = ix tr and fr = ix fr in
          if d = 0 then pure (fun _ -> ())
          else pure (fun st -> Array.unsafe_set st.ints (d) ((Array.unsafe_get st.ints (if cond st then tr else fr))))
        else
          let d = ix d and tr = ix tr and fr = ix fr in
          pure (fun st -> Array.unsafe_set st.flts (d) ((Array.unsafe_get st.flts (if cond st then tr else fr)))))
      | Op.Load (d, b, off) ->
        let d = ix d and b = ix b in
        fun st ->
          let addr = (Array.unsafe_get st.ints (b)) + off in
          let v = Memory.load st.x.Conv_exec.mem addr in
          if d <> 0 then Array.unsafe_set st.ints (d) (v);
          st.saddrs.(st.count) <- addr;
          st.count <- st.count + 1;
          k st
      | Op.Loadf (d, b, off) ->
        let d = ix d and b = ix b in
        fun st ->
          let addr = (Array.unsafe_get st.ints (b)) + off in
          Array.unsafe_set st.flts (d) (Memory.loadf st.x.Conv_exec.mem addr);
          st.saddrs.(st.count) <- addr;
          st.count <- st.count + 1;
          k st
      | Op.Store (s, b, off) ->
        let s = ix s and b = ix b in
        fun st ->
          let addr = (Array.unsafe_get st.ints (b)) + off in
          Memory.store st.x.Conv_exec.mem addr (Array.unsafe_get st.ints (s));
          st.saddrs.(st.count) <- addr;
          st.count <- st.count + 1;
          k st
      | Op.Storef (s, b, off) ->
        let s = ix s and b = ix b in
        fun st ->
          let addr = (Array.unsafe_get st.ints (b)) + off in
          Memory.storef st.x.Conv_exec.mem addr (Array.unsafe_get st.flts (s));
          st.saddrs.(st.count) <- addr;
          st.count <- st.count + 1;
          k st
      | Op.Print s ->
        let s = ix s in
        pure (fun st -> Output.Sink.push st.x.Conv_exec.sink (Output.Oint (Array.unsafe_get st.ints (s))))
      | Op.Printf s ->
        let s = ix s in
        pure (fun st -> Output.Sink.push st.x.Conv_exec.sink (Output.Oflt (Array.unsafe_get st.flts (s))))

  (* Control instructions end the packet by setting term/next. *)
  let control (eff : thread) : thread =
   fun st ->
    st.saddrs.(st.count) <- -1;
    st.count <- st.count + 1;
    eff st

  let compile_insn threads pc (insn : int Insn.t) : thread =
    match insn with
    | Insn.Op op ->
      with_prologue pc (compile_op op (fun st -> threads.(pc + 1) st))
    | Insn.Br (c, s1, s2, target) ->
      with_prologue pc
        (if Reg.is_int s1 && Reg.is_int s2 then
           let cmp = icmp c and s1 = ix s1 and s2 = ix s2 in
           control (fun st ->
               if cmp (Array.unsafe_get st.ints (s1)) (Array.unsafe_get st.ints (s2)) then begin
                 st.term <- kbr_t;
                 st.next <- target
               end
               else begin
                 st.term <- kbr_f;
                 st.next <- pc + 1
               end)
         else
           control (fun st ->
               let taken =
                 Cmp.eval c
                   (Regfile.get_i st.x.Conv_exec.regs s1)
                   (Regfile.get_i st.x.Conv_exec.regs s2)
               in
               st.term <- (if taken then kbr_t else kbr_f);
               st.next <- (if taken then target else pc + 1)))
    | Insn.Jmp target ->
      with_prologue pc
        (control (fun st ->
             st.term <- Conv_exec.Kjmp;
             st.next <- target))
    | Insn.Call target ->
      let ra = Reg.index Reg.ra in
      with_prologue pc
        (control (fun st ->
             Array.unsafe_set st.ints (ra) (pc + 1);
             st.term <- Conv_exec.Kcall;
             st.next <- target))
    | Insn.Ret ->
      let ra = Reg.index Reg.ra in
      with_prologue pc
        (control (fun st ->
             st.term <- Conv_exec.Kret;
             st.next <- (Array.unsafe_get st.ints (ra))))
    | Insn.Jr r ->
      with_prologue pc
        (if Reg.is_int r then
           let r = ix r in
           control (fun st ->
               st.term <- Conv_exec.Kjr;
               st.next <- (Array.unsafe_get st.ints (r)))
         else
           control (fun st ->
               let tgt = Regfile.get_i st.x.Conv_exec.regs r in
               st.term <- Conv_exec.Kjr;
               st.next <- tgt))
    | Insn.Halt ->
      with_prologue pc
        (control (fun st ->
             st.x.Conv_exec.halted <- true;
             st.term <- Conv_exec.Khalt;
             st.next <- pc))

  (* --- direct-threaded functional execution ----------------------------

     [run] retains no per-step records, so the packet bookkeeping above
     (mem_addrs slots, packet-cap splits, one record and one fresh array
     per packet) is pure overhead there.  A second thread array drives
     run-to-halt directly: every instruction is a single closure that
     applies its effect to the shared executor state and tail-calls its
     successor — compiled backward so fall-through is a direct call to
     the already-built successor closure, and control flow is a computed
     tail call through the array.

     The dyn budget lives in [st.fuel] ([fuel] = budget minus ops
     executed), exact at every thread entry; threads are one-argument
     closures on purpose — a two-argument call to a statically-unknown
     closure goes through the shared caml_apply2 stub, whose single
     indirect jump retargets on every dispatch and defeats the branch
     predictor.  [x.dyn] is reconstructed at every exit, and [st.fuel]
     is synced before any access that can raise, which keeps the
     Runaway point, its payload, and the dyn count after an Unaligned
     halt exactly the interpreter's.  The packet cap only
     decides where packets split (no architectural effect), so outputs,
     dyn counts, machine traps and exceptions are all preserved; the
     final [pc] is the one field [run] leaves unspecified, and its
     executor is private to it.  This path is what the oracle's
     conv-compiled leg fuzzes differentially against the interpreter. *)

  type fthread = st -> unit

  (* The insn that would be the (budget+1)-th: raise before its effects,
     with the interpreter's exact dyn value. *)
  let runaway st =
    let x = st.x in
    x.Conv_exec.dyn <- x.Conv_exec.budget + 1;
    raise (Conv_exec.Runaway x.Conv_exec.dyn)

  (* [st.fuel] is post-charge for the jumping insn; the wild target
     itself is never charged, as in the packet driver. *)
  let wild st target =
    let x = st.x in
    x.Conv_exec.dyn <- x.Conv_exec.budget - st.fuel;
    x.Conv_exec.halted <- true;
    x.Conv_exec.mtrap <- Some (Conv_exec.Wild_jump target)

  (* --- straight-line fusion --------------------------------------------

     Runs of consecutive [Insn.Op]s pay one fuel check, one [st.fuel]
     sync and one successor dispatch for the whole run: each op becomes
     an effect-only closure ([st -> unit], a cheap one-argument call)
     sequenced directly inside the run's entry closure.  If the
     remaining budget cannot cover the run, the entry falls back to the
     per-op checked chain, which charges op by op and raises Runaway at
     exactly the interpreter's instruction — so fusion never changes
     where the budget runs out.  Faultable ops (memory accesses and the
     class-malformed Opsem fallback) re-sync [st.fuel] by their
     compile-time distance from the previous sync, so an Unaligned
     raised mid-run still reconstructs the interpreter's exact dyn
     count.  Runs are capped so the suffix entry built for every pc (any
     pc can be a computed-jump target) stays linear in program size. *)

  let noop (_ : st) = ()

  let op_faultable (op : Op.t) =
    (not (classes_ok op))
    ||
    match op with
    | Op.Load _ | Op.Loadf _ | Op.Store _ | Op.Storef _ -> true
    | _ -> false

  (* Effect-only compilation: no fuel check, no successor.  [gap] is how
     many run ops were charged since the last [st.fuel] sync (the run
     entry or the previous faultable op), counting this one; only
     faultable arms consume it. *)
  let compile_op_eff (op : Op.t) ~(gap : int) : st -> unit =
    if not (classes_ok op) then
      fun st ->
        st.fuel <- st.fuel - gap;
        let x = st.x in
        ignore
          (Opsem.exec ~regs:x.Conv_exec.regs ~mem:x.Conv_exec.mem ~sbuf:None
             ~out:(fun item -> Output.Sink.push x.Conv_exec.sink item)
             op
            : int)
    else
      match op with
      | Op.Nop -> noop
      | Op.Mov (d, s) when Reg.is_int d ->
        let d = ix d and s = ix s in
        if d = 0 then noop
        else fun st -> Array.unsafe_set st.ints d (Array.unsafe_get st.ints s)
      | Op.Mov (d, s) ->
        let d = ix d and s = ix s in
        fun st -> Array.unsafe_set st.flts d (Array.unsafe_get st.flts s)
      | Op.Li (d, v) ->
        let d = ix d in
        if d = 0 then noop else fun st -> Array.unsafe_set st.ints d v
      | Op.Lif (d, v) ->
        let d = ix d in
        fun st -> Array.unsafe_set st.flts d v
      | Op.Alu (a, d, s1, s2) -> (
        let d = ix d and s1 = ix s1 in
        if d = 0 then noop
        else
          (* Specialized per opcode and operand form: an [alu_fn]
             closure would cost a caml_apply2 per executed ALU op, the
             most common dynamic instruction kind. *)
          match s2 with
          | Op.R r -> (
            let s2 = ix r in
            match a with
            | Op.Add ->
              fun st ->
                let x = Array.unsafe_get st.ints s1
                and y = Array.unsafe_get st.ints s2 in
                Array.unsafe_set st.ints d (x + y)
            | Op.Sub ->
              fun st ->
                let x = Array.unsafe_get st.ints s1
                and y = Array.unsafe_get st.ints s2 in
                Array.unsafe_set st.ints d (x - y)
            | Op.Mul ->
              fun st ->
                let x = Array.unsafe_get st.ints s1
                and y = Array.unsafe_get st.ints s2 in
                Array.unsafe_set st.ints d (x * y)
            | Op.Div ->
              fun st ->
                let x = Array.unsafe_get st.ints s1
                and y = Array.unsafe_get st.ints s2 in
                Array.unsafe_set st.ints d (if y = 0 then 0 else x / y)
            | Op.Rem ->
              fun st ->
                let x = Array.unsafe_get st.ints s1
                and y = Array.unsafe_get st.ints s2 in
                Array.unsafe_set st.ints d (if y = 0 then 0 else x mod y)
            | Op.And ->
              fun st ->
                let x = Array.unsafe_get st.ints s1
                and y = Array.unsafe_get st.ints s2 in
                Array.unsafe_set st.ints d (x land y)
            | Op.Or ->
              fun st ->
                let x = Array.unsafe_get st.ints s1
                and y = Array.unsafe_get st.ints s2 in
                Array.unsafe_set st.ints d (x lor y)
            | Op.Xor ->
              fun st ->
                let x = Array.unsafe_get st.ints s1
                and y = Array.unsafe_get st.ints s2 in
                Array.unsafe_set st.ints d (x lxor y)
            | Op.Sll ->
              fun st ->
                let x = Array.unsafe_get st.ints s1
                and y = Array.unsafe_get st.ints s2 in
                Array.unsafe_set st.ints d (x lsl (y land 63))
            | Op.Srl ->
              fun st ->
                let x = Array.unsafe_get st.ints s1
                and y = Array.unsafe_get st.ints s2 in
                Array.unsafe_set st.ints d (x lsr (y land 63))
            | Op.Sra ->
              fun st ->
                let x = Array.unsafe_get st.ints s1
                and y = Array.unsafe_get st.ints s2 in
                Array.unsafe_set st.ints d (x asr (y land 63))
            | Op.Set c ->
              let cmp = icmp c in
              fun st ->
                Array.unsafe_set st.ints d
                  (if cmp (Array.unsafe_get st.ints s1) (Array.unsafe_get st.ints s2)
                   then 1
                   else 0))
          | Op.I v -> (
            match a with
            | Op.Add ->
              fun st ->
                let x = Array.unsafe_get st.ints s1 in
                Array.unsafe_set st.ints d (x + v)
            | Op.Sub ->
              fun st ->
                let x = Array.unsafe_get st.ints s1 in
                Array.unsafe_set st.ints d (x - v)
            | Op.Mul ->
              fun st ->
                let x = Array.unsafe_get st.ints s1 in
                Array.unsafe_set st.ints d (x * v)
            | Op.Div ->
              fun st ->
                let x = Array.unsafe_get st.ints s1 in
                Array.unsafe_set st.ints d (if v = 0 then 0 else x / v)
            | Op.Rem ->
              fun st ->
                let x = Array.unsafe_get st.ints s1 in
                Array.unsafe_set st.ints d (if v = 0 then 0 else x mod v)
            | Op.And ->
              fun st ->
                let x = Array.unsafe_get st.ints s1 in
                Array.unsafe_set st.ints d (x land v)
            | Op.Or ->
              fun st ->
                let x = Array.unsafe_get st.ints s1 in
                Array.unsafe_set st.ints d (x lor v)
            | Op.Xor ->
              fun st ->
                let x = Array.unsafe_get st.ints s1 in
                Array.unsafe_set st.ints d (x lxor v)
            | Op.Sll ->
              fun st ->
                let x = Array.unsafe_get st.ints s1 in
                Array.unsafe_set st.ints d (x lsl (v land 63))
            | Op.Srl ->
              fun st ->
                let x = Array.unsafe_get st.ints s1 in
                Array.unsafe_set st.ints d (x lsr (v land 63))
            | Op.Sra ->
              fun st ->
                let x = Array.unsafe_get st.ints s1 in
                Array.unsafe_set st.ints d (x asr (v land 63))
            | Op.Set c ->
              let cmp = icmp c in
              fun st ->
                Array.unsafe_set st.ints d
                  (if cmp (Array.unsafe_get st.ints s1) v then 1 else 0)))
      | Op.Fpu (f, d, s1, s2) -> (
        let d = ix d and s1 = ix s1 and s2 = ix s2 in
        match f with
        | Op.Fadd ->
          fun st ->
            Array.unsafe_set st.flts d
              (Array.unsafe_get st.flts s1 +. Array.unsafe_get st.flts s2)
        | Op.Fsub ->
          fun st ->
            Array.unsafe_set st.flts d
              (Array.unsafe_get st.flts s1 -. Array.unsafe_get st.flts s2)
        | Op.Fmul ->
          fun st ->
            Array.unsafe_set st.flts d
              (Array.unsafe_get st.flts s1 *. Array.unsafe_get st.flts s2)
        | Op.Fdiv ->
          fun st ->
            Array.unsafe_set st.flts d
              (Array.unsafe_get st.flts s1 /. Array.unsafe_get st.flts s2))
      | Op.Fcmp (c, d, s1, s2) -> (
        let d = ix d and s1 = ix s1 and s2 = ix s2 in
        if d = 0 then noop
        else
          match c with
          | Cmp.Eq ->
            fun st ->
              Array.unsafe_set st.ints d
                (if Array.unsafe_get st.flts s1 = Array.unsafe_get st.flts s2 then 1 else 0)
          | Cmp.Ne ->
            fun st ->
              Array.unsafe_set st.ints d
                (if Array.unsafe_get st.flts s1 <> Array.unsafe_get st.flts s2 then 1 else 0)
          | Cmp.Lt ->
            fun st ->
              Array.unsafe_set st.ints d
                (if Array.unsafe_get st.flts s1 < Array.unsafe_get st.flts s2 then 1 else 0)
          | Cmp.Le ->
            fun st ->
              Array.unsafe_set st.ints d
                (if Array.unsafe_get st.flts s1 <= Array.unsafe_get st.flts s2 then 1 else 0)
          | Cmp.Gt ->
            fun st ->
              Array.unsafe_set st.ints d
                (if Array.unsafe_get st.flts s1 > Array.unsafe_get st.flts s2 then 1 else 0)
          | Cmp.Ge ->
            fun st ->
              Array.unsafe_set st.ints d
                (if Array.unsafe_get st.flts s1 >= Array.unsafe_get st.flts s2 then 1 else 0))
      | Op.Itof (d, s) ->
        let d = ix d and s = ix s in
        fun st -> Array.unsafe_set st.flts d (float_of_int (Array.unsafe_get st.ints s))
      | Op.Ftoi (d, s) ->
        let d = ix d and s = ix s in
        if d = 0 then noop
        else
          fun st ->
           Array.unsafe_set st.ints d
             (int_of_float (Float.trunc (Array.unsafe_get st.flts s)))
      | Op.Select (c, d, s1, s2, tr, fr) -> (
        let cmp = icmp c and s1 = ix s1 in
        let cond =
          match s2 with
          | Op.R r ->
            let s2 = ix r in
            fun st -> cmp (Array.unsafe_get st.ints s1) (Array.unsafe_get st.ints s2)
          | Op.I v -> fun st -> cmp (Array.unsafe_get st.ints s1) v
        in
        if Reg.is_int d then
          let d = ix d and tr = ix tr and fr = ix fr in
          if d = 0 then noop
          else
            fun st ->
             Array.unsafe_set st.ints d
               (Array.unsafe_get st.ints (if cond st then tr else fr))
        else
          let d = ix d and tr = ix tr and fr = ix fr in
          fun st ->
            Array.unsafe_set st.flts d
              (Array.unsafe_get st.flts (if cond st then tr else fr)))
      | Op.Load (d, b, off) ->
        let d = ix d and b = ix b in
        fun st ->
          st.fuel <- st.fuel - gap;
          let v = Memory.load st.x.Conv_exec.mem (Array.unsafe_get st.ints b + off) in
          if d <> 0 then Array.unsafe_set st.ints d v
      | Op.Loadf (d, b, off) ->
        let d = ix d and b = ix b in
        fun st ->
          st.fuel <- st.fuel - gap;
          Array.unsafe_set st.flts d
            (Memory.loadf st.x.Conv_exec.mem (Array.unsafe_get st.ints b + off))
      | Op.Store (s, b, off) ->
        let s = ix s and b = ix b in
        fun st ->
          st.fuel <- st.fuel - gap;
          Memory.store st.x.Conv_exec.mem
            (Array.unsafe_get st.ints b + off)
            (Array.unsafe_get st.ints s)
      | Op.Storef (s, b, off) ->
        let s = ix s and b = ix b in
        fun st ->
          st.fuel <- st.fuel - gap;
          Memory.storef st.x.Conv_exec.mem
            (Array.unsafe_get st.ints b + off)
            (Array.unsafe_get st.flts s)
      | Op.Print s ->
        let s = ix s in
        fun st -> Output.Sink.push st.x.Conv_exec.sink (Output.Oint (Array.unsafe_get st.ints s))
      | Op.Printf s ->
        let s = ix s in
        fun st -> Output.Sink.push st.x.Conv_exec.sink (Output.Oflt (Array.unsafe_get st.flts s))

  (* Per-op checked thread: one budget check and charge around the
     op's effect.  Faultable effects sync [st.fuel] themselves (their
     gap of 1 is exactly this op's charge); the rest charge here.  This
     path only runs for ops that no fused run covers — run suffixes too
     short to pay off, and runs the remaining budget cannot cover. *)
  let compile_op_fast (op : Op.t) (k : fthread) : fthread =
    let e = compile_op_eff op ~gap:1 in
    if op_faultable op then
      fun st ->
        if st.fuel = 0 then runaway st;
        e st;
        k st
    else
      fun st ->
        let fuel = st.fuel in
        if fuel = 0 then runaway st;
        st.fuel <- fuel - 1;
        e st;
        k st

  (* Branch compare specialized per comparator: an [icmp]-returned
     closure would cost a caml_apply2 per executed branch. *)
  let br_fin (c : Cmp.t) s1 s2 (taken : st -> unit) (not_taken : st -> unit) : st -> unit =
    match c with
    | Cmp.Eq ->
      fun st ->
        if Array.unsafe_get st.ints s1 = Array.unsafe_get st.ints s2 then taken st
        else not_taken st
    | Cmp.Ne ->
      fun st ->
        if Array.unsafe_get st.ints s1 <> Array.unsafe_get st.ints s2 then taken st
        else not_taken st
    | Cmp.Lt ->
      fun st ->
        if Array.unsafe_get st.ints s1 < Array.unsafe_get st.ints s2 then taken st
        else not_taken st
    | Cmp.Le ->
      fun st ->
        if Array.unsafe_get st.ints s1 <= Array.unsafe_get st.ints s2 then taken st
        else not_taken st
    | Cmp.Gt ->
      fun st ->
        if Array.unsafe_get st.ints s1 > Array.unsafe_get st.ints s2 then taken st
        else not_taken st
    | Cmp.Ge ->
      fun st ->
        if Array.unsafe_get st.ints s1 >= Array.unsafe_get st.ints s2 then taken st
        else not_taken st

  (* Longest run fused as one closure; also bounds the per-pc build cost
     (every pc gets a suffix-run entry, so an unrolled straight-line
     program would otherwise cost quadratic closures). *)
  let fuse_cap = 8

  (* [charge] is the whole run's budget ([m] ops, plus one more when the
     terminating branch or jump is folded into [fin]); checked once at
     entry, paid once before [fin].  [slow] — the per-op checked chain —
     takes over when the remaining budget cannot cover the run. *)
  let fuse (effs : (st -> unit) list) (slow : fthread) ~(charge : int) (fin : st -> unit) :
      fthread =
    match effs with
    | [ e0 ] ->
      fun st ->
        let fuel = st.fuel in
        if fuel < charge then slow st
        else begin
          e0 st;
          st.fuel <- fuel - charge;
          fin st
        end
    | [ e0; e1 ] ->
      fun st ->
        let fuel = st.fuel in
        if fuel < charge then slow st
        else begin
          e0 st;
          e1 st;
          st.fuel <- fuel - charge;
          fin st
        end
    | [ e0; e1; e2 ] ->
      fun st ->
        let fuel = st.fuel in
        if fuel < charge then slow st
        else begin
          e0 st;
          e1 st;
          e2 st;
          st.fuel <- fuel - charge;
          fin st
        end
    | [ e0; e1; e2; e3 ] ->
      fun st ->
        let fuel = st.fuel in
        if fuel < charge then slow st
        else begin
          e0 st;
          e1 st;
          e2 st;
          e3 st;
          st.fuel <- fuel - charge;
          fin st
        end
    | [ e0; e1; e2; e3; e4 ] ->
      fun st ->
        let fuel = st.fuel in
        if fuel < charge then slow st
        else begin
          e0 st;
          e1 st;
          e2 st;
          e3 st;
          e4 st;
          st.fuel <- fuel - charge;
          fin st
        end
    | [ e0; e1; e2; e3; e4; e5 ] ->
      fun st ->
        let fuel = st.fuel in
        if fuel < charge then slow st
        else begin
          e0 st;
          e1 st;
          e2 st;
          e3 st;
          e4 st;
          e5 st;
          st.fuel <- fuel - charge;
          fin st
        end
    | [ e0; e1; e2; e3; e4; e5; e6 ] ->
      fun st ->
        let fuel = st.fuel in
        if fuel < charge then slow st
        else begin
          e0 st;
          e1 st;
          e2 st;
          e3 st;
          e4 st;
          e5 st;
          e6 st;
          st.fuel <- fuel - charge;
          fin st
        end
    | [ e0; e1; e2; e3; e4; e5; e6; e7 ] ->
      fun st ->
        let fuel = st.fuel in
        if fuel < charge then slow st
        else begin
          e0 st;
          e1 st;
          e2 st;
          e3 st;
          e4 st;
          e5 st;
          e6 st;
          e7 st;
          st.fuel <- fuel - charge;
          fin st
        end
    | _ -> assert false (* [fuse_cap] bounds runs to 1..8 effects *)

  (* [next] is the already-built closure for [pc + 1] (backward
     compilation), so fall-through and not-taken branches skip the array
     indirection; only actual jumps go through [fast].  A static target
     lands on the off-the-end sentinel or a wild-jump closure exactly
     where the packet driver would trap. *)
  let compile_insn_fast fast n ~next pc (insn : int Insn.t) : fthread =
    let goto target : fthread =
      if target >= 0 && target <= n then fun st -> fast.(target) st
      else fun st -> wild st target
    in
    match insn with
    | Insn.Op op -> compile_op_fast op next
    | Insn.Br (c, s1, s2, target) ->
      let taken = goto target in
      if Reg.is_int s1 && Reg.is_int s2 then
        let fin = br_fin c (ix s1) (ix s2) taken next in
        fun st ->
          let fuel = st.fuel in
          if fuel = 0 then runaway st;
          st.fuel <- fuel - 1;
          fin st
      else
        fun st ->
         let fuel = st.fuel in
         if fuel = 0 then runaway st;
         st.fuel <- fuel - 1;
         if
           Cmp.eval c
             (Regfile.get_i st.x.Conv_exec.regs s1)
             (Regfile.get_i st.x.Conv_exec.regs s2)
         then taken st
         else next st
    | Insn.Jmp target ->
      let t = goto target in
      fun st ->
        let fuel = st.fuel in
        if fuel = 0 then runaway st;
        st.fuel <- fuel - 1;
        t st
    | Insn.Call target ->
      let ra = Reg.index Reg.ra in
      let t = goto target in
      fun st ->
        let fuel = st.fuel in
        if fuel = 0 then runaway st;
        st.fuel <- fuel - 1;
        Array.unsafe_set st.ints (ra) (pc + 1);
        t st
    | Insn.Ret ->
      let ra = Reg.index Reg.ra in
      fun st ->
        let fuel = st.fuel in
        if fuel = 0 then runaway st;
        st.fuel <- fuel - 1;
        let t = (Array.unsafe_get st.ints (ra)) in
        if t >= 0 && t < n then fast.(t) st else wild st t
    | Insn.Jr r ->
      if Reg.is_int r then
        let r = ix r in
        fun st ->
          let fuel = st.fuel in
          if fuel = 0 then runaway st;
          st.fuel <- fuel - 1;
          let t = (Array.unsafe_get st.ints (r)) in
          if t >= 0 && t < n then fast.(t) st else wild st t
      else
        fun st ->
         let fuel = st.fuel in
         if fuel = 0 then runaway st;
         st.fuel <- fuel - 1;
         let t = Regfile.get_i st.x.Conv_exec.regs r in
         if t >= 0 && t < n then fast.(t) st else wild st t
    | Insn.Halt ->
      fun st ->
        let fuel = st.fuel in
        if fuel = 0 then runaway st;
        st.fuel <- fuel - 1;
        let x = st.x in
        x.Conv_exec.dyn <- x.Conv_exec.budget - (fuel - 1);
        x.Conv_exec.halted <- true

  let compile_trusted (prog : Conv_prog.t) =
    let n = Array.length prog.insns in
    let threads = Array.make (n + 1) (fun (_ : st) -> assert false) in
    Array.iteri (fun pc insn -> threads.(pc) <- compile_insn threads pc insn) prog.insns;
    let fast = Array.make (n + 1) (fun (_ : st) -> assert false) in
    (* Off the end without a control transfer: the same architected
       Wild_jump as the packet sentinel's no-room-left arm. *)
    fast.(n) <- (fun st -> wild st n);
    (* [runlen.(pc)]: consecutive [Insn.Op]s starting at pc, capped. *)
    let runlen = Array.make (n + 1) 0 in
    for pc = n - 1 downto 0 do
      (match prog.insns.(pc) with
      | Insn.Op _ -> runlen.(pc) <- min fuse_cap (runlen.(pc + 1) + 1)
      | _ -> runlen.(pc) <- 0);
      let base = compile_insn_fast fast n ~next:fast.(pc + 1) pc prog.insns.(pc) in
      let m = runlen.(pc) in
      fast.(pc) <-
        (if m >= 1 then begin
           (* Thread the sync gap left to right: each faultable op's
              effect rewinds [st.fuel] by its distance from the run
              entry or the previous faultable op. *)
           let effs = ref [] and synced = ref 0 in
           for j = 0 to m - 1 do
             match prog.insns.(pc + j) with
             | Insn.Op op ->
               let gap = j + 1 - !synced in
               if op_faultable op then synced := j + 1;
               effs := compile_op_eff op ~gap :: !effs
             | _ -> assert false
           done;
           let effs = List.rev !effs in
           (* Back-edge targets are not yet built in this backward pass,
              so a folded jump reads [fast] at transfer time. *)
           let goto target : st -> unit =
             if target >= 0 && target <= n then fun st -> (Array.unsafe_get fast target) st
             else fun st -> wild st target
           in
           (* A run of ≥ 2 always fuses; a run of 1 only pays off when
              its terminator folds in.  The terminating branch or jump
              joins the run (one more charge unit) unless the run is
              capped or falls off the program's end. *)
           let plain () =
             if m >= 2 then fuse effs base ~charge:m fast.(pc + m) else base
           in
           if m = fuse_cap || pc + m = n then plain ()
           else
             match prog.insns.(pc + m) with
             | Insn.Br (c, s1, s2, target) when Reg.is_int s1 && Reg.is_int s2 ->
               let taken = goto target and not_taken = fast.(pc + m + 1) in
               fuse effs base ~charge:(m + 1) (br_fin c (ix s1) (ix s2) taken not_taken)
             | Insn.Jmp target -> fuse effs base ~charge:(m + 1) (goto target)
             | _ -> plain ()
         end
         else base)
    done;
    (* Fall-through off the program's end: the same cap check, then the
       same architected Wild_jump trap as the interpreter's loop. *)
    threads.(n) <-
      (fun st ->
        if st.count >= Conv_exec.packet_cap then begin
          st.term <- Conv_exec.Kfall;
          st.next <- n
        end
        else begin
          st.x.Conv_exec.halted <- true;
          st.x.Conv_exec.mtrap <- Some (Conv_exec.Wild_jump n);
          st.term <- Conv_exec.Khalt;
          st.next <- n
        end);
    { cprog = prog; threads; fast }

  let compile (w : Bisa_verify.Verify.verified_conv_prog) =
    compile_trusted (w :> Conv_prog.t)

  type t = { code : code; st : st }

  let exec t = t.st.x

  let bind code (x : Conv_exec.t) =
    if not (code.cprog == x.Conv_exec.prog || code.cprog = x.Conv_exec.prog) then
      invalid_arg "Compile.Conv.bind: code compiled from a different program";
    {
      code;
      st =
        {
          x;
          ints = Regfile.ints x.Conv_exec.regs;
          flts = Regfile.flts x.Conv_exec.regs;
          saddrs = Array.make Conv_exec.packet_cap (-1);
          count = 0;
          term = Conv_exec.Khalt;
          next = 0;
          last_start = -1;
          fuel = 0;
        };
    }

  let step t =
    let st = t.st in
    let x = st.x in
    let n = Array.length t.code.cprog.Conv_prog.insns in
    if x.Conv_exec.halted then None
    else if x.Conv_exec.pc < 0 || x.Conv_exec.pc >= n then begin
      x.Conv_exec.halted <- true;
      x.Conv_exec.mtrap <- Some (Conv_exec.Wild_jump x.Conv_exec.pc);
      None
    end
    else begin
      let start = x.Conv_exec.pc in
      st.count <- 0;
      match t.code.threads.(start) st with
      | exception Memory.Unaligned a ->
        (* Earlier instructions of the packet committed; the offender
           halts it — no atomicity in the conventional machine. *)
        x.Conv_exec.halted <- true;
        x.Conv_exec.mtrap <- Some (Conv_exec.Unaligned_access a);
        None
      | () ->
        let term, next =
          if (not x.Conv_exec.halted) && (st.next < 0 || st.next >= n) then begin
            x.Conv_exec.halted <- true;
            x.Conv_exec.mtrap <- Some (Conv_exec.Wild_jump st.next);
            (Conv_exec.Khalt, start)
          end
          else (st.term, st.next)
        in
        x.Conv_exec.pc <- next;
        (* Fresh array per packet: the conventional pipeline's stream
           retains packets across steps. *)
        Some
          {
            Conv_exec.start;
            count = st.count;
            mem_addrs = Array.sub st.saddrs 0 st.count;
            term;
            next;
          }
    end

  (* Zero-allocation stepping for the conventional pipeline's fast path:
     mirrors [step] exactly, but the packet lands in the binding's
     mutable fields ([last_start], [count], [term], [next]) and the
     scratch address array is handed out directly instead of being copied
     into a fresh packet record.  Returns [false] exactly where [step]
     returns [None]; the results are only valid until the next call. *)
  let step_into t =
    let st = t.st in
    let x = st.x in
    let n = Array.length t.code.cprog.Conv_prog.insns in
    if x.Conv_exec.halted then false
    else if x.Conv_exec.pc < 0 || x.Conv_exec.pc >= n then begin
      x.Conv_exec.halted <- true;
      x.Conv_exec.mtrap <- Some (Conv_exec.Wild_jump x.Conv_exec.pc);
      false
    end
    else begin
      let start = x.Conv_exec.pc in
      st.count <- 0;
      match t.code.threads.(start) st with
      | exception Memory.Unaligned a ->
        x.Conv_exec.halted <- true;
        x.Conv_exec.mtrap <- Some (Conv_exec.Unaligned_access a);
        false
      | () ->
        if (not x.Conv_exec.halted) && (st.next < 0 || st.next >= n)
        then begin
          x.Conv_exec.halted <- true;
          x.Conv_exec.mtrap <- Some (Conv_exec.Wild_jump st.next);
          st.term <- Conv_exec.Khalt;
          st.next <- start
        end;
        x.Conv_exec.pc <- st.next;
        st.last_start <- start;
        true
    end

  let last_start t = t.st.last_start
  let last_count t = t.st.count
  let last_term t = t.st.term
  let last_next t = t.st.next
  let last_addrs t = t.st.saddrs

  let run ?(budget = 2_000_000_000) code =
    let x = Conv_exec.create code.cprog in
    Conv_exec.set_budget x budget;
    let t = bind code x in
    let st = t.st in
    st.fuel <- budget;
    let n = Array.length code.cprog.Conv_prog.insns in
    let pc = x.Conv_exec.pc in
    (try
       if pc >= 0 && pc <= n then code.fast.(pc) st
       else wild st pc
     with Memory.Unaligned a ->
       (* Committed effects stay (no packet atomicity in this machine);
          the offending access halts the run, as in [step].  [st.fuel]
          was synced post-charge just before the access. *)
       x.Conv_exec.dyn <- x.Conv_exec.budget - st.fuel;
       x.Conv_exec.halted <- true;
       x.Conv_exec.mtrap <- Some (Conv_exec.Unaligned_access a));
    (Conv_exec.output x, Conv_exec.dyn_insns x)
end
