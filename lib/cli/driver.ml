let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let read_source ?scale ~component path_or_name =
  if Sys.file_exists path_or_name then (read_file path_or_name, [])
  else begin
    match Bisa_workloads.Workloads.find path_or_name with
    | w -> (Bisa_workloads.Workloads.source ?scale w, w.library_funcs)
    | exception Invalid_argument _ ->
      Bisa_base.Diag.fail ~component
        "no such file, and not a workload name: %s (workloads: %s)" path_or_name
        (String.concat " " Bisa_workloads.Workloads.names)
  end

(* The single definition lives with the protocol, so the daemon and the
   one-shot CLIs cannot interpret --icache-kb differently. *)
let cache_of_kb = Bisa_proto.Proto.cache_of_kb

let guard ~component f =
  let render d = `Error (false, Bisa_base.Diag.render d) in
  try f () with
  | Bisa_compiler.Compiler.Compile_error d -> render d
  | Bisa_isa.Encode.Malformed d -> render d
  | Bisa_base.Diag.Fail d -> render d
  | Bisa_sim.Conv_exec.Runaway n -> render (Bisa_sim.Conv_exec.runaway_diag n)
  | Bisa_sim.Block_exec.Runaway n -> render (Bisa_sim.Block_exec.runaway_diag n)
  | Bisa_sim.Block_exec.Illegal_fetch { required; requested } ->
    render (Bisa_sim.Block_exec.illegal_fetch_diag ~required ~requested)
  | Bisa_sim.Memory.Unaligned a ->
    render
      (Bisa_base.Diag.error ~component
         (Printf.sprintf "unaligned memory access at 0x%x" a))
  | Sys_error msg -> render (Bisa_base.Diag.error ~component msg)
