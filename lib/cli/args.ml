open Cmdliner

let env var doc = Cmd.Env.info var ~doc

let icache_kb =
  Arg.(
    value
    & opt int 16
    & info [ "icache-kb" ]
        ~env:(env "BISA_ICACHE_KB" "Default for $(b,--icache-kb).")
        ~doc:"L1 icache size in KB; 0 = perfect.")

let perfect_pred =
  Arg.(
    value & flag
    & info [ "perfect-pred" ]
        ~env:(env "BISA_PERFECT_PRED" "Default for $(b,--perfect-pred).")
        ~doc:"Use a perfect branch predictor.")

let jobs =
  Arg.(
    value
    & opt int (Bisa_base.Pool.default_workers ())
    & info [ "j"; "jobs" ]
        ~env:(env "BISA_JOBS" "Default for $(b,--jobs).")
        ~doc:
          "Worker domains to shard across (default: the machine's recommended \
           domain count).  Results are identical at every setting.")

let seed ~default =
  Arg.(
    value & opt int default
    & info [ "seed" ]
        ~env:(env "BISA_SEED" "Default for $(b,--seed).")
        ~doc:"Base RNG seed.")

let scale =
  Arg.(
    value
    & opt (some int) None
    & info [ "scale" ]
        ~env:(env "BISA_SCALE" "Default for $(b,--scale).")
        ~doc:"Override every workload's iteration scale.")

let budget =
  Arg.(
    value
    & opt int Bisa_timing.Config.default.op_budget
    & info [ "budget" ]
        ~env:(env "BISA_BUDGET" "Default for $(b,--budget).")
        ~doc:
          "Operation budget: a run retiring more dynamic operations than this \
           exits with a runaway diagnostic instead of spinning forever.")

let trace_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ]
        ~env:(env "BISA_TRACE_OUT" "Default for $(b,--trace-out).")
        ~doc:
          "Write pipeline events as Chrome trace_event JSON to this file (load \
           in Perfetto or chrome://tracing).")

let trace_sample =
  Arg.(
    value & opt int 1
    & info [ "trace-sample" ]
        ~env:(env "BISA_TRACE_SAMPLE" "Default for $(b,--trace-sample).")
        ~doc:
          "Export every Nth fetch unit's trace events (default 1 = all); the \
           event counters stay exact regardless of sampling.")
