open Cmdliner

let env var doc = Cmd.Env.info var ~doc

let icache_kb =
  Arg.(
    value
    & opt int 16
    & info [ "icache-kb" ]
        ~env:(env "BISA_ICACHE_KB" "Default for $(b,--icache-kb).")
        ~doc:"L1 icache size in KB; 0 = perfect.")

(* A plain [Arg.flag] with an env fallback cannot be switched back off at
   the command line, so BISA_PERFECT_PRED=true would beat an explicit
   flag.  An optional bool with [~vopt:true] keeps the bare
   [--perfect-pred] spelling while letting [--perfect-pred=false]
   override the environment: the command line always wins. *)
let perfect_pred =
  Arg.(
    value
    & opt ~vopt:true bool false
    & info [ "perfect-pred" ]
        ~env:(env "BISA_PERFECT_PRED" "Default for $(b,--perfect-pred).")
        ~doc:
          "Use a perfect branch predictor.  Bare $(b,--perfect-pred) means \
           true; an explicit $(b,--perfect-pred=false) overrides \
           $(b,BISA_PERFECT_PRED).")

let jobs =
  Arg.(
    value
    & opt int (Bisa_base.Pool.default_workers ())
    & info [ "j"; "jobs" ]
        ~env:(env "BISA_JOBS" "Default for $(b,--jobs).")
        ~doc:
          "Worker domains to shard across (default: the machine's recommended \
           domain count).  Results are identical at every setting.")

let seed ~default =
  Arg.(
    value & opt int default
    & info [ "seed" ]
        ~env:(env "BISA_SEED" "Default for $(b,--seed).")
        ~doc:"Base RNG seed.")

let scale =
  Arg.(
    value
    & opt (some int) None
    & info [ "scale" ]
        ~env:(env "BISA_SCALE" "Default for $(b,--scale).")
        ~doc:"Override every workload's iteration scale.")

let budget =
  Arg.(
    value
    & opt int Bisa_timing.Config.default.op_budget
    & info [ "budget" ]
        ~env:(env "BISA_BUDGET" "Default for $(b,--budget).")
        ~doc:
          "Operation budget: a run retiring more dynamic operations than this \
           exits with a runaway diagnostic instead of spinning forever.")

let exec =
  Arg.(
    value
    & opt (enum Bisa_sim.Compile.backends) Bisa_sim.Compile.Interp
    & info [ "exec" ]
        ~env:(env "BISA_EXEC" "Default for $(b,--exec).")
        ~doc:
          "Functional-executor backend: $(b,interp) (the dispatching \
           interpreter, default) or $(b,compiled) (per-block threaded code).  \
           The backends are differentially tested equivalent — outputs, \
           metrics and checkpoints are identical; only wall-clock differs.")

let trace_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ]
        ~env:(env "BISA_TRACE_OUT" "Default for $(b,--trace-out).")
        ~doc:
          "Write pipeline events as Chrome trace_event JSON to this file (load \
           in Perfetto or chrome://tracing).")

let trace_sample =
  Arg.(
    value & opt int 1
    & info [ "trace-sample" ]
        ~env:(env "BISA_TRACE_SAMPLE" "Default for $(b,--trace-sample).")
        ~doc:
          "Export every Nth fetch unit's trace events (default 1 = all); the \
           event counters stay exact regardless of sampling.")

let out_cap =
  Arg.(
    value
    & opt (some int) None
    & info [ "out-cap" ]
        ~env:(env "BISA_OUT_CAP" "Default for $(b,--out-cap).")
        ~doc:
          "Retain only the first N program-output items (the total count and a \
           rolling content hash stay exact).  Keeps resident memory independent \
           of run length on paper-scale $(b,--scale) runs; default keeps \
           everything.")

let resume =
  Arg.(
    value
    & opt (some string) None
    & info [ "resume" ]
        ~env:(env "BISA_RESUME" "Default for $(b,--resume).")
        ~doc:
          "Campaign directory for crash-safe runs: finished cells are reused, \
           interrupted cells resume from their last checkpoint, and the final \
           report is byte-identical to an uninterrupted run.  Created if \
           missing.")

let checkpoint_every =
  Arg.(
    value
    & opt int 100_000
    & info [ "checkpoint-every" ]
        ~env:(env "BISA_CHECKPOINT_EVERY" "Default for $(b,--checkpoint-every).")
        ~doc:
          "Checkpoint cadence in dynamic operations (with $(b,--resume)): a \
           kill at any instant loses at most this much work per in-flight \
           cell.")

let timeout =
  Arg.(
    value
    & opt (some float) None
    & info [ "timeout" ]
        ~env:(env "BISA_TIMEOUT" "Default for $(b,--timeout).")
        ~doc:
          "Per-cell wall-clock budget in seconds: cells exceeding it are \
           recorded as timed out, the surviving results still print, and the \
           run exits nonzero.")

(* --- typed request builders --------------------------------------------- *)

(* The flags above assemble into the daemon protocol's typed values here,
   so every binary — one-shot CLI or bisad client — builds literally the
   same request the engine consumes, and configuration semantics cannot
   drift between them. *)

let isa =
  Arg.(
    value
    & opt
        (enum [ ("conv", Bisa_proto.Proto.Conv); ("block", Bisa_proto.Proto.Block) ])
        Bisa_proto.Proto.Block
    & info [ "isa" ]
        ~env:(env "BISA_ISA" "Default for $(b,--isa).")
        ~doc:"Which executable to run: conv or block.")

let deadline =
  Arg.(
    value
    & opt (some float) None
    & info [ "deadline" ]
        ~env:(env "BISA_DEADLINE" "Default for $(b,--deadline).")
        ~doc:
          "Per-request wall-clock deadline in seconds (daemon requests): a \
           request still running past it gets a structured deadline-expired \
           error instead of blocking, and is never retried.  Default: no \
           deadline (the server's $(b,--deadline), if any, applies).")

let sim_cfg =
  let mk icache_kb perfect_pred budget out_cap deadline =
    { Bisa_proto.Proto.icache_kb; perfect_pred; budget; out_cap; deadline }
  in
  Term.(const mk $ icache_kb $ perfect_pred $ budget $ out_cap $ deadline)
