(** Cmdliner flags shared across the toolchain's binaries.

    One definition per flag keeps names, defaults, documentation, and
    environment-variable fallbacks identical everywhere: every flag here
    can also be set via a [BISA_*] variable (the command line wins), so CI
    and benchmark scripts can pin a configuration without editing each
    invocation. *)

val icache_kb : int Cmdliner.Term.t
(** [--icache-kb] / [BISA_ICACHE_KB]: L1 icache size in KB, 0 = perfect
    (default 16).  Interpret with {!Driver.cache_of_kb}. *)

val perfect_pred : bool Cmdliner.Term.t
(** [--perfect-pred] / [BISA_PERFECT_PRED]: perfect branch prediction.
    Bare [--perfect-pred] means true; an explicit [--perfect-pred=false]
    beats the environment variable (the command line always wins). *)

val jobs : int Cmdliner.Term.t
(** [-j]/[--jobs] / [BISA_JOBS]: worker-domain count (default: the
    machine's recommended count). *)

val seed : default:int -> int Cmdliner.Term.t
(** [--seed] / [BISA_SEED]: base RNG seed. *)

val scale : int option Cmdliner.Term.t
(** [--scale] / [BISA_SCALE]: override workload iteration scale. *)

val budget : int Cmdliner.Term.t
(** [--budget] / [BISA_BUDGET]: dynamic-operation runaway budget. *)

val exec : Bisa_sim.Compile.backend Cmdliner.Term.t
(** [--exec] / [BISA_EXEC]: functional-executor backend, [interp]
    (default) or [compiled].  Equivalent by differential test; only
    wall-clock differs. *)

val trace_out : string option Cmdliner.Term.t
(** [--trace-out] / [BISA_TRACE_OUT]: write a Chrome trace_event JSON
    file of pipeline events (open in Perfetto / [chrome://tracing]). *)

val trace_sample : int Cmdliner.Term.t
(** [--trace-sample] / [BISA_TRACE_SAMPLE]: export every Nth fetch unit's
    events (default 1 = all); counters stay exact regardless. *)

val out_cap : int option Cmdliner.Term.t
(** [--out-cap] / [BISA_OUT_CAP]: bound program-output retention so RSS
    stays independent of run length on streamed paper-scale runs. *)

val resume : string option Cmdliner.Term.t
(** [--resume] / [BISA_RESUME]: campaign directory for crash-safe,
    resumable experiment runs (created if missing). *)

val checkpoint_every : int Cmdliner.Term.t
(** [--checkpoint-every] / [BISA_CHECKPOINT_EVERY]: snapshot cadence in
    dynamic operations for in-flight cells (default 100000). *)

val timeout : float option Cmdliner.Term.t
(** [--timeout] / [BISA_TIMEOUT]: per-cell wall-clock budget in seconds;
    exceeding cells are recorded as timed out and the run exits
    nonzero. *)

(** {1 Typed request builders}

    The flags above assembled into the daemon protocol's typed values:
    every binary — one-shot CLI or bisad client — builds literally the
    same request values the serving engine consumes. *)

val isa : Bisa_proto.Proto.isa Cmdliner.Term.t
(** [--isa] / [BISA_ISA]: which executable to run (default [block]). *)

val deadline : float option Cmdliner.Term.t
(** [--deadline] / [BISA_DEADLINE]: per-request wall-clock deadline in
    seconds for daemon requests; past it the server answers with a
    structured deadline-expired [Err] that is never retried.  Also the
    server-default deadline flag of [bisad serve]. *)

val sim_cfg : Bisa_proto.Proto.sim_cfg Cmdliner.Term.t
(** [--icache-kb], [--perfect-pred], [--budget], [--out-cap] and
    [--deadline] bundled into the protocol's simulation configuration;
    interpret with {!Bisa_proto.Proto.to_config}. *)
