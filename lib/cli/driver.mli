(** Shared CLI plumbing: input loading and the unified failure guard.

    Every binary of the toolchain reports failures the same way: one
    {!Bisa_base.Diag}-formatted line on stderr and a nonzero exit code —
    never an uncaught-exception backtrace.  [guard] is the single place
    that knows the toolchain's failure exceptions; a new binary gets the
    whole contract by wrapping its body in [guard ~component]. *)

val read_file : string -> string

val read_source : ?scale:int -> component:string -> string -> string * string list
(** [read_source ~component path_or_name] returns MiniC source text plus
    the library functions it expects: the file's contents when
    [path_or_name] exists, else the built-in workload of that name
    ([scale] overrides a workload's iteration scale; files ignore it).
    Raises {!Bisa_base.Diag.Fail} (naming [component]) when neither. *)

val cache_of_kb : int -> Bisa_uarch.Cache.config option
(** The standard [--icache-kb] interpretation: 0 is a perfect icache,
    anything else a 4-way, 32-byte-line cache of that size. *)

val guard :
  component:string ->
  (unit -> ([> `Error of bool * string | `Ok of unit ] as 'a)) ->
  'a
(** Run [f], converting every toolchain failure — compile errors,
    malformed binaries, {!Bisa_base.Diag.Fail}, executor runaways and
    illegal fetches, and [Sys_error] — into [`Error (false, line)] with a
    rendered one-line diagnostic, which cmdliner's [Term.ret] turns into
    a nonzero exit. *)
