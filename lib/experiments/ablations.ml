module Table = Bisa_base.Table
module Config = Bisa_timing.Config
module Enlarge = Bisa_backend.Enlarge
module Workloads = Bisa_workloads.Workloads
module Cache = Bisa_uarch.Cache
module Pool = Bisa_base.Pool

type row = { label : string; values : (string * float) list }
type study = { id : string; title : string; rows : row list; rendered : string }

let default_subset = [ "m88ksim"; "perl"; "li" ]

let scaled_16k = { Cache.size_bytes = Cache.kb 16; assoc = 4; line_bytes = 32 }
let base_config = Config.with_icache (Some scaled_16k) Config.default

let enlargement_variants =
  [
    ("default", Enlarge.default_config);
    ("no-enlarge", { Enlarge.default_config with enabled = false });
    ("1-fault", { Enlarge.default_config with max_faults = 1 });
    ("8-op-limit", { Enlarge.default_config with max_ops = 8 });
    ("merge-backedges", { Enlarge.default_config with merge_across_back_edges = true });
    ("enlarge-libs", { Enlarge.default_config with enlarge_libraries = true });
  ]

let enlargement_rules ?(workloads = default_subset) ?(pool = Pool.sequential) () =
  let t =
    Table.create ~title:"Ablation: enlargement termination rules"
      ~headers:
        [
          ("Benchmark", Table.Left);
          ("Config", Table.Left);
          ("Cycles", Table.Right);
          ("Mean block", Table.Right);
          ("Code bytes", Table.Right);
          ("Fault squashes", Table.Right);
        ]
  in
  (* Grid: every (workload, enlargement variant) compiles and simulates
     independently. *)
  let grid =
    List.concat_map
      (fun name -> List.map (fun variant -> (name, variant)) enlargement_variants)
      workloads
  in
  let runs =
    Pool.map_list pool
      (fun (name, (label, cfg)) ->
        let w = Workloads.find name in
        let c = Workloads.compile ~enlarge:cfg w in
        let m = Bisa_timing.Block_pipeline.run base_config c.block in
        (name, label, m, c.block.code_bytes))
      grid
  in
  let rows =
    List.concat_map
      (fun group ->
        let rows =
          List.map
            (fun (name, label, (m : Bisa_timing.Metrics.t), code_bytes) ->
              Table.add_row t
                [
                  name;
                  label;
                  Table.cell_int m.cycles;
                  Table.cell_float (Bisa_timing.Metrics.mean_block_size m);
                  Table.cell_int code_bytes;
                  Table.cell_int m.fault_squash_redirects;
                ];
              {
                label = name ^ "/" ^ label;
                values =
                  [
                    ("cycles", float_of_int m.cycles);
                    ("block_size", Bisa_timing.Metrics.mean_block_size m);
                    ("code_bytes", float_of_int code_bytes);
                  ];
              })
            group
        in
        Table.add_rule t;
        rows)
      (Figures.chunks (List.length enlargement_variants) runs)
  in
  {
    id = "ablation_rules";
    title = "Enlargement termination-rule ablation";
    rows;
    rendered = Table.to_string t;
  }

let history_policy ?(workloads = default_subset) ?(pool = Pool.sequential) () =
  let t =
    Table.create ~title:"Ablation: history-update policy (predictor modification 3)"
      ~headers:
        [
          ("Benchmark", Table.Left);
          ("Policy", Table.Left);
          ("Cycles", Table.Right);
          ("Mispredicts", Table.Right);
        ]
  in
  let policies = [ ("variable (paper)", false); ("naive 3-bit", true) ] in
  let grid =
    List.concat_map (fun name -> List.map (fun p -> (name, p)) policies) workloads
  in
  let runs =
    Pool.map_list pool
      (fun (name, (label, naive)) ->
        let w = Workloads.find name in
        let c = Workloads.compile w in
        let cfg =
          {
            base_config with
            Config.block_pred = { base_config.Config.block_pred with naive_history = naive };
          }
        in
        (name, label, Bisa_timing.Block_pipeline.run cfg c.block))
      grid
  in
  let rows =
    List.map
      (fun (name, label, (m : Bisa_timing.Metrics.t)) ->
        Table.add_row t
          [ name; label; Table.cell_int m.cycles; Table.cell_int m.mispredicts ];
        {
          label = name ^ "/" ^ label;
          values =
            [
              ("cycles", float_of_int m.cycles);
              ("mispredicts", float_of_int m.mispredicts);
            ];
        })
      runs
  in
  {
    id = "ablation_history";
    title = "History-length ablation";
    rows;
    rendered = Table.to_string t;
  }

let all ?pool () = [ enlargement_rules ?pool (); history_policy ?pool () ]
