(* Resumable experiment campaigns.

   A campaign directory makes a grid run crash-safe: every simulated cell
   persists its finished metrics to its own atomically-written manifest,
   and in-flight cells leave periodic checkpoint snapshots.  Re-running
   with the same directory skips finished cells, resumes interrupted ones
   from their last snapshot, and produces byte-identical reports — at any
   worker count, because cell files are keyed by content (benchmark, ISA,
   configuration fingerprint, program hash), not by execution order.

   Layout:
     <dir>/meta                  campaign identity (scale, cache flavor)
     <dir>/cells/<key>.done      finished cell: serialized Metrics
     <dir>/cells/<key>.ckpt      in-flight cell: Checkpoint snapshot
     <dir>/cells/<key>.timeout   cell that exceeded the per-cell budget *)

module Config = Bisa_timing.Config
module Checkpoint = Bisa_timing.Checkpoint
module Metrics = Bisa_timing.Metrics

let component = "campaign"

let fail fmt =
  Printf.ksprintf
    (fun msg -> raise (Bisa_base.Diag.Fail (Bisa_base.Diag.error ~component msg)))
    fmt

exception Timed_out of { key : string; ops : int }

type t = {
  dir : string;
  checkpoint_every : int;
  timeout_s : float option;
}

let default_checkpoint_every = 100_000

let meta_string ~scale ~paper_caches =
  Printf.sprintf "bisa-campaign/1\nscale=%s\npaper_caches=%b\n"
    (match scale with Some n -> string_of_int n | None -> "default")
    paper_caches

let mkdir_p path =
  if not (Sys.file_exists path) then
    try Unix.mkdir path 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

let open_ ~dir ?(checkpoint_every = default_checkpoint_every) ?timeout_s ~scale
    ~paper_caches () =
  if checkpoint_every <= 0 then
    fail "--checkpoint-every must be positive (got %d)" checkpoint_every;
  mkdir_p dir;
  mkdir_p (Filename.concat dir "cells");
  let meta_path = Filename.concat dir "meta" in
  let expected = meta_string ~scale ~paper_caches in
  if Sys.file_exists meta_path then begin
    let found = read_file meta_path in
    if found <> expected then
      fail
        "campaign %s was created under different settings (found %S, this run \
         is %S); use a fresh directory"
        dir found expected
  end
  else Bisa_base.Atomic_file.write_string meta_path expected;
  { dir; checkpoint_every; timeout_s }

let dir t = t.dir

let key ~bench ~isa ~cfg_hash ~prog_hash =
  Printf.sprintf "%s-%s-%016Lx-%016Lx" bench isa cfg_hash prog_hash

let cell_path t k ext = Filename.concat (Filename.concat t.dir "cells") (k ^ ext)

(* Finished-cell manifest: a tiny versioned wrapper around Metrics. *)
let cell_magic = "BISACELL"
let cell_version = 1

let write_done t k (m : Metrics.t) =
  let w = Bisa_base.Codec.W.create () in
  Bisa_base.Codec.W.string w cell_magic;
  Bisa_base.Codec.W.int w cell_version;
  Bisa_base.Codec.W.string w k;
  Metrics.save m w;
  Bisa_base.Atomic_file.write_string (cell_path t k ".done")
    (Bisa_base.Codec.W.contents w)

let read_done t k =
  let path = cell_path t k ".done" in
  if not (Sys.file_exists path) then None
  else begin
    let r = Bisa_base.Codec.R.of_string (read_file path) in
    let magic = try Bisa_base.Codec.R.string r with _ -> "" in
    if magic <> cell_magic then fail "cell manifest %s is not a cell manifest" path;
    let v = Bisa_base.Codec.R.int r in
    if v <> cell_version then
      fail "cell manifest %s has version %d (expected %d)" path v cell_version;
    let stored = Bisa_base.Codec.R.string r in
    if stored <> k then
      fail "cell manifest %s belongs to cell %s (stale or renamed file)" path stored;
    let m = Metrics.create () in
    Metrics.load m r;
    Some m
  end

(* A sampled wall-clock deadline: cheap enough to poll every pipeline
   step, accurate to ~1k steps. *)
let make_deadline timeout_s =
  let start = Unix.gettimeofday () in
  let n = ref 0 in
  fun () ->
    incr n;
    !n land 1023 = 0 && Unix.gettimeofday () -. start > timeout_s

let remove_if_exists path = try Sys.remove path with Sys_error _ -> ()

let run_cell (type p a) t
    (module P : Bisa_timing.Pipeline.S with type prog = p and type artifact = a)
    ~bench (cfg : Config.t) (art : a) : Metrics.t =
  let cfg_hash = Config.fingerprint cfg in
  let prog_hash = P.Artifact.hash art in
  let k = key ~bench ~isa:P.isa ~cfg_hash ~prog_hash in
  match read_done t k with
  | Some m -> m
  | None -> begin
    let ckpt = cell_path t k ".ckpt" in
    let deadline = Option.map make_deadline t.timeout_s in
    match
      Checkpoint.drive (module P)
        ~snapshot:(ckpt, t.checkpoint_every) ?deadline cfg art
    with
    | Checkpoint.Finished (m, _out) ->
      write_done t k m;
      remove_if_exists (cell_path t k ".timeout");
      m
    | Checkpoint.Timed_out { ops } ->
      (* Record the timeout; the snapshot stays so a retry (e.g. with a
         larger budget) resumes instead of restarting. *)
      Bisa_base.Atomic_file.write_string (cell_path t k ".timeout")
        (Printf.sprintf "timed out after %d ops\n" ops);
      raise (Timed_out { key = k; ops })
  end

let timed_out_diag ~key ~ops =
  Bisa_base.Diag.errorf ~component "cell %s exceeded its time budget after %d ops \
                                    (snapshot kept; rerun with --resume to continue)"
    key ops
