module Enlarge = Bisa_backend.Enlarge
module Block_prog = Bisa_isa.Block_prog
module Block_exec = Bisa_sim.Block_exec
module Workloads = Bisa_workloads.Workloads
module Table = Bisa_base.Table
module Cache = Bisa_uarch.Cache
module Config = Bisa_timing.Config

type profile = (string * int, int * int) Hashtbl.t

(* Reconstruct which function and protoblock a global block id belongs to:
   the linker laid functions out in list order. *)
let attribution (enlarged : Enlarge.t list) =
  let spans =
    List.fold_left
      (fun (off, acc) (e : Enlarge.t) ->
        (off + Array.length e.blocks, (off, e) :: acc))
      (0, []) enlarged
    |> snd |> List.rev
  in
  fun block ->
    let rec find = function
      | [] -> invalid_arg "Profile_guided: block id out of range"
      | (off, (e : Enlarge.t)) :: rest ->
        if block >= off && block < off + Array.length e.blocks then
          (e.name, e.start_proto.(block - off))
        else find rest
    in
    find spans

let collect (prog : Block_prog.t) (enlarged : Enlarge.t list) ?(budget = 50_000_000) () =
  let attribute = attribution enlarged in
  let profile : profile = Hashtbl.create 256 in
  let exec = Block_exec.create prog in
  Block_exec.set_budget exec budget;
  let rec go () =
    match Block_exec.step exec with
    | None -> ()
    | Some step ->
      (match step.dir_taken with
      | Some taken ->
        let key = attribute step.block in
        let t, n = Option.value (Hashtbl.find_opt profile key) ~default:(0, 0) in
        Hashtbl.replace profile key ((if taken then t + 1 else t), n + 1)
      | None -> ());
      go ()
  in
  go ();
  profile

let bias_of (profile : profile) fname proto =
  match Hashtbl.find_opt profile (fname, proto) with
  | Some (t, n) when n >= 16 -> Some (float_of_int t /. float_of_int n)
  | _ -> None

let compile ?scale (w : Workloads.t) =
  let src = Workloads.source ?scale w in
  let typed, ir, mfuncs =
    Bisa_compiler.Compiler.to_machine ~library_funcs:w.library_funcs src
  in
  (* Profiling build: no enlargement, so trap outcomes map 1:1 to
     protoblocks. *)
  let flat, flat_enlarged =
    Bisa_backend.Linker.link_block
      ~config:{ Enlarge.default_config with enabled = false }
      ir.globals mfuncs
  in
  let profile = collect flat flat_enlarged () in
  let conv = Bisa_backend.Linker.link_conventional ir.globals mfuncs in
  let block, enlarged =
    Bisa_backend.Linker.link_block ~bias:(bias_of profile) ir.globals mfuncs
  in
  { Bisa_compiler.Compiler.typed; ir; conv; block; enlarged }

let study ?(workloads = [ "gcc"; "go" ]) ?(pool = Bisa_base.Pool.sequential) () =
  let t =
    Table.create ~title:"Section 6: profile-guided enlargement (unbiased traps kept)"
      ~headers:
        [
          ("Benchmark", Table.Left);
          ("Build", Table.Left);
          ("Code bytes", Table.Right);
          ("Cycles @4KB", Table.Right);
          ("Icache misses @4KB", Table.Right);
          ("Fault squashes", Table.Right);
          ("Mean block", Table.Right);
        ]
  in
  let cache4 = { Cache.size_bytes = Cache.kb 4; assoc = 4; line_bytes = 32 } in
  let cfg = Config.with_icache (Some cache4) Config.default in
  (* Grid: every (workload, build flavour) is an independent item — the
     profile-guided build does its own profiling run inside the task. *)
  let grid =
    List.concat_map
      (fun name -> [ (name, "default"); (name, "profile-guided") ])
      workloads
  in
  let runs =
    Bisa_base.Pool.map_list pool
      (fun (name, label) ->
        let w = Workloads.find name in
        let c = if label = "default" then Workloads.compile w else compile w in
        (name, label, c.Bisa_compiler.Compiler.block.code_bytes,
         Bisa_timing.Block_pipeline.run cfg c.Bisa_compiler.Compiler.block))
      grid
  in
  let rows =
    List.concat_map
      (fun group ->
        let rows =
          List.map
            (fun (name, label, code_bytes, (m : Bisa_timing.Metrics.t)) ->
              Table.add_row t
                [
                  name;
                  label;
                  Table.cell_int code_bytes;
                  Table.cell_int m.cycles;
                  Table.cell_int m.icache_misses;
                  Table.cell_int m.fault_squash_redirects;
                  Table.cell_float (Bisa_timing.Metrics.mean_block_size m);
                ];
              {
                Ablations.label = name ^ "/" ^ label;
                values =
                  [
                    ("code_bytes", float_of_int code_bytes);
                    ("cycles", float_of_int m.cycles);
                    ("icache_misses", float_of_int m.icache_misses);
                  ];
              })
            group
        in
        Table.add_rule t;
        rows)
      (Figures.chunks 2 runs)
  in
  {
    Ablations.id = "profile_guided";
    title = "Profile-guided enlargement (paper section 6)";
    rows;
    rendered = Table.to_string t;
  }
