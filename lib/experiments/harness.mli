(** Shared experiment infrastructure: compiled-workload and timing-run
    caches, the evaluation-wide default configuration, and the worker
    pool the experiment grids fan out on.

    Sizing note (DESIGN.md section 7): the surrogates run hundreds of
    thousands to a few million operations instead of the paper's 78-232
    million, and their static footprints are KBs instead of hundreds of
    KBs.  The default icache is therefore the {e scaled} stand-in
    (8KB, 4-way) for the paper's 64KB figure-3 cache, and the figure-6/7
    sweep uses 2/4/8KB for the paper's 16/32/64KB.  [paper_caches] selects
    the literal sizes instead.

    Concurrency (DESIGN.md section 9): both caches are mutex-protected
    with exactly-once fill semantics — N domains requesting the same
    (benchmark, config) cell block on one in-flight computation rather
    than repeating it — so experiment grids may call [run_conv] /
    [run_block] from any pool worker. *)

type t

val create :
  ?scale:int ->
  ?paper_caches:bool ->
  ?pool:Bisa_base.Pool.t ->
  ?exec:Bisa_sim.Compile.backend ->
  ?campaign:Campaign.t ->
  unit ->
  t
(** [pool] (default {!Bisa_base.Pool.sequential}) is the worker pool the
    experiment modules fan work out on; pass one pool per CLI run.
    [exec] (default [Interp]) selects the functional-executor backend
    for every harness-routed timing run; under [Compiled], each program
    is compiled to threaded code once and shared like the predecode
    tables.  Metrics are backend-independent (the backends drive
    identical executor state), so the run cache needs no exec key.
    [campaign] makes every harness-routed timing run crash-safe and
    resumable (see {!Campaign}); without it runs are in-memory only. *)

val exec_backend : t -> Bisa_sim.Compile.backend

val campaign : t -> Campaign.t option

val chunks : int -> 'a list -> 'a list list
(** [chunks n xs] splits grid results back into consecutive per-benchmark
    groups of [n].  Raises [Invalid_argument] when [n <= 0], or unless
    [n] divides the length.  Shared by the experiment modules. *)

val base_config : t -> Bisa_timing.Config.t
(** The figure-3 configuration: identical cores, real predictor, default
    icache. *)

val sweep_caches : t -> (string * Bisa_uarch.Cache.config) list
(** The figure-6/7 icache points, smallest first, with display labels. *)

val benchmarks : t -> Bisa_workloads.Workloads.t list

val pool : t -> Bisa_base.Pool.t

val compiled : t -> Bisa_workloads.Workloads.t -> Bisa_compiler.Compiler.compiled

val predecoded_conv : t -> Bisa_workloads.Workloads.t -> Bisa_timing.Predecode.t
(** The workload's predecoded op-template table, built exactly once and
    shared by every grid configuration (and worker domain) that simulates
    it.  Fires the compute hook with ["predecode:<bench>/<isa>"]. *)

val predecoded_block : t -> Bisa_workloads.Workloads.t -> Bisa_timing.Predecode.blocks

val code_conv : t -> Bisa_workloads.Workloads.t -> Bisa_timing.Pipeline.Conv.code
(** The workload's threaded-code form ({!Bisa_sim.Compile}), built
    exactly once and shared like the predecode tables.  Forces the
    predecode memo first so verification is discharged before the
    trusted compile.  Fires the compute hook with
    ["compile-exec:<bench>/<isa>"]. *)

val code_block : t -> Bisa_workloads.Workloads.t -> Bisa_timing.Pipeline.Block.code

val artifact_conv :
  t -> Bisa_workloads.Workloads.t -> Bisa_timing.Pipeline.Conv.artifact
(** The workload's prepared artifact bundle — program witness, memoized
    predecode tables, threaded code (when the harness was created with
    [~exec:Compiled]) and content hash — built exactly once and shared
    like the tables it bundles.  Fires the compute hook with
    ["artifact:<bench>/<isa>"].  This is the value every timing run,
    campaign cell and checkpoint consumes. *)

val artifact_block :
  t -> Bisa_workloads.Workloads.t -> Bisa_timing.Pipeline.Block.artifact

val run_pipe :
  t ->
  (module Bisa_timing.Pipeline.S with type prog = 'p and type artifact = 'a) ->
  artifact:(Bisa_workloads.Workloads.t -> 'a) ->
  Bisa_workloads.Workloads.t ->
  Bisa_timing.Config.t ->
  Bisa_timing.Metrics.t
(** Timing run through any {!Bisa_timing.Pipeline.S} implementation,
    memoized on (benchmark, [P.isa], icache, predictor).  [artifact]
    supplies the prepared bundle (normally {!artifact_conv} /
    {!artifact_block}).  Safe to call concurrently from pool workers; a
    given cell compiles and simulates exactly once.  {!run_conv} and
    {!run_block} are its two standard instantiations. *)

val run_conv :
  t -> Bisa_workloads.Workloads.t -> Bisa_timing.Config.t -> Bisa_timing.Metrics.t

val run_block :
  t -> Bisa_workloads.Workloads.t -> Bisa_timing.Config.t -> Bisa_timing.Metrics.t

val set_compute_hook : t -> (string -> unit) -> unit
(** Observe cache misses: the hook fires exactly once per distinct cell,
    with ["compile:<bench>"] or ["run:<bench>/<isa>"], before the
    computation runs.  Used by the thread-safety tests; defaults to
    [ignore]. *)

val verbose : bool ref
(** When set, each cache miss logs a progress line to stderr.  Lines are
    serialized behind a mutex, so concurrent workers never interleave
    mid-line. *)
