(** Resumable experiment campaigns: per-cell atomic manifests plus
    checkpoint snapshots under one campaign directory.

    A cell is one (benchmark, ISA, configuration, program) simulation,
    keyed by content — the configuration's {!Bisa_timing.Config.fingerprint}
    and the program's content hash — so results are reused independently
    of execution order or worker count.  Finished cells persist their
    {!Bisa_timing.Metrics.t} through {!Bisa_base.Atomic_file}; in-flight
    cells leave {!Bisa_timing.Checkpoint} snapshots every
    [checkpoint_every] dynamic ops.  Killing a run at any instant and
    re-opening the same directory loses at most one checkpoint interval
    of one in-flight cell per worker, and the final report is
    byte-identical to an uninterrupted run. *)

type t

exception Timed_out of { key : string; ops : int }
(** Raised by {!run_cell} when the per-cell time budget expires.  The
    cell's snapshot is kept, so a rerun resumes rather than restarts. *)

val open_ :
  dir:string ->
  ?checkpoint_every:int ->
  ?timeout_s:float ->
  scale:int option ->
  paper_caches:bool ->
  unit ->
  t
(** Open (creating if missing) a campaign directory.  [scale] and
    [paper_caches] are the campaign's identity: re-opening an existing
    directory under different settings raises a structured
    {!Bisa_base.Diag.Fail} rather than silently mixing results.
    [checkpoint_every] (default 100_000) is the snapshot cadence in
    dynamic ops; [timeout_s] bounds each cell's wall-clock time. *)

val dir : t -> string

val run_cell :
  t ->
  (module Bisa_timing.Pipeline.S with type prog = 'p and type artifact = 'a) ->
  bench:string ->
  Bisa_timing.Config.t ->
  'a ->
  Bisa_timing.Metrics.t
(** Run one prepared artifact ({!Bisa_timing.Pipeline.S.prepare} /
    [bundle]) as a cell under campaign protection: return the stored
    metrics if the cell already finished, otherwise resume from its
    snapshot (if any), simulate, persist the manifest atomically, and
    return.  Raises {!Timed_out} when [timeout_s] expires first.

    An artifact carrying threaded code runs the cell on the compiled
    functional executor.  Artifacts are derived state and the exec
    backend is deliberately absent from the cell key: both backends
    drive identical executor state and produce identical metrics, so a
    campaign started under one backend may be finished under the
    other. *)

val timed_out_diag : key:string -> ops:int -> Bisa_base.Diag.t
(** Structured rendering of a cell timeout for the unified failure
    model. *)

val key : bench:string -> isa:string -> cfg_hash:int64 -> prog_hash:int64 -> string
(** The cell naming scheme (exposed for tests and tooling). *)
