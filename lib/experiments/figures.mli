(** One runner per table and figure of the paper's evaluation (section 5).

    Each runner executes whatever simulations it needs (shared through the
    {!Harness} caches), renders the same rows/series the paper reports, and
    states the measured headline next to the paper's. *)

type report = {
  id : string;  (** "table1" ... "fig7" *)
  title : string;
  rendered : string;  (** tables / ASCII bars, ready to print *)
  summary : string;  (** measured headline vs. the paper's *)
}

val chunks : int -> 'a list -> 'a list list
(** Alias of {!Harness.chunks}; raises [Invalid_argument] when [n <= 0]
    or unless [n] divides the length. *)

val table1 : unit -> report
(** Instruction classes and latencies — the simulator's actual latency
    table, which {e is} Table 1. *)

val table2 : Harness.t -> report
(** Benchmarks, inputs, dynamic conventional-ISA instruction counts. *)

val fig3 : Harness.t -> report
(** Execution cycles, conventional vs block-structured, real predictor. *)

val fig4 : Harness.t -> report
(** Same comparison under perfect branch prediction. *)

val fig5 : Harness.t -> report
(** Average retired block sizes. *)

val fig6 : Harness.t -> report
(** Conventional ISA: relative slowdown vs a perfect icache across sizes. *)

val fig7 : Harness.t -> report
(** Block-structured ISA: the same icache sweep. *)

val all : Harness.t -> report list
