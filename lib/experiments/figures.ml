module Table = Bisa_base.Table
module Textplot = Bisa_base.Textplot
module Config = Bisa_timing.Config
module Workloads = Bisa_workloads.Workloads
module Pool = Bisa_base.Pool

type report = { id : string; title : string; rendered : string; summary : string }

(* The grid-splitting helper lives in Harness (shared, and unit-tested
   against its edge cases); keep the historical alias here. *)
let chunks = Harness.chunks

(* ----- Table 1 ----------------------------------------------------------- *)

let table1 () =
  let t =
    Table.create ~title:"Table 1: Instruction classes and latencies"
      ~headers:
        [ ("Instruction Class", Table.Left); ("Exec. Lat.", Table.Right);
          ("Description", Table.Left) ]
  in
  List.iter
    (fun cls ->
      Table.add_row t
        [
          Bisa_isa.Opclass.to_string cls;
          string_of_int (Bisa_isa.Opclass.latency cls);
          Bisa_isa.Opclass.description cls;
        ])
    Bisa_isa.Opclass.all;
  {
    id = "table1";
    title = "Instruction classes and latencies";
    rendered = Table.to_string t;
    summary =
      "Reproduced exactly: the simulator's functional-unit latencies are the \
       paper's Table 1 values.";
  }

(* ----- Table 2 ----------------------------------------------------------- *)

let table2 h =
  let t =
    Table.create ~title:"Table 2: Benchmarks and dynamic instruction counts"
      ~headers:
        [
          ("Benchmark", Table.Left);
          ("Surrogate input", Table.Left);
          ("# of Instructions", Table.Right);
          ("Paper # of Instructions", Table.Right);
        ]
  in
  let counts =
    Pool.map_list (Harness.pool h)
      (fun (w : Workloads.t) ->
        let c = Harness.compiled h w in
        let _, n = Bisa_sim.Conv_exec.run c.conv () in
        (w, n))
      (Harness.benchmarks h)
  in
  List.iter
    (fun ((w : Workloads.t), n) ->
      let paper =
        match List.find_opt (fun (b, _, _) -> b = w.name) Expected.table2 with
        | Some (_, _, n) -> Table.cell_int n
        | None -> "-"
      in
      Table.add_row t [ w.name; w.description; Table.cell_int n; paper ])
    counts;
  {
    id = "table2";
    title = "Benchmarks and dynamic instruction counts";
    rendered = Table.to_string t;
    summary =
      "Surrogate dynamic lengths are scaled down ~100x from the paper's \
       78M-232M instructions (DESIGN.md section 7); the mix of behaviours, \
       not the absolute counts, carries the results.";
  }

(* ----- Figures 3/4: cycle comparison -------------------------------------- *)

let cycle_comparison h ~(predictor : Config.predictor) =
  let cfg = Config.with_predictor predictor (Harness.base_config h) in
  let benches = Harness.benchmarks h in
  (* Every (benchmark, pipeline) cell is an independent grid item; the
     harness memo guarantees shared cells compute once. *)
  let grid = List.concat_map (fun w -> [ (w, `Conv); (w, `Block) ]) benches in
  let metrics =
    Pool.map_list (Harness.pool h)
      (fun ((w : Workloads.t), which) ->
        match which with
        | `Conv -> Harness.run_conv h w cfg
        | `Block -> Harness.run_block h w cfg)
      grid
  in
  List.map2
    (fun (w : Workloads.t) ms ->
      match ms with [ mc; mb ] -> (w.name, mc, mb) | _ -> assert false)
    benches (chunks 2 metrics)

let render_cycles ~title rows =
  let t =
    Table.create ~title
      ~headers:
        [
          ("Benchmark", Table.Left);
          ("Conv cycles", Table.Right);
          ("BSA cycles", Table.Right);
          ("Improvement", Table.Right);
        ]
  in
  let improvements =
    List.map
      (fun (name, (mc : Bisa_timing.Metrics.t), (mb : Bisa_timing.Metrics.t)) ->
        let imp =
          100.0 *. (float_of_int (mc.cycles - mb.cycles) /. float_of_int mc.cycles)
        in
        Table.add_row t
          [
            name;
            Table.cell_int mc.cycles;
            Table.cell_int mb.cycles;
            Table.cell_percent imp;
          ];
        (name, imp))
      rows
  in
  let mean =
    List.fold_left (fun a (_, i) -> a +. i) 0.0 improvements
    /. float_of_int (List.length improvements)
  in
  Table.add_rule t;
  Table.add_row t [ "mean"; ""; ""; Table.cell_percent mean ];
  let plot =
    Textplot.grouped_bars ~title ~unit_label:"cycles (millions)"
      ~groups:(List.map (fun (n, _, _) -> n) rows)
      ~series:
        [
          {
            Textplot.label = "Conventional ISA";
            values =
              List.map
                (fun (_, (m : Bisa_timing.Metrics.t), _) -> float_of_int m.cycles /. 1e6)
                rows;
          };
          {
            Textplot.label = "Block-Structured ISA";
            values =
              List.map
                (fun (_, _, (m : Bisa_timing.Metrics.t)) -> float_of_int m.cycles /. 1e6)
                rows;
          };
        ]
      ()
  in
  (Table.to_string t ^ "\n" ^ plot, mean, improvements)

let fig3 h =
  let rows = cycle_comparison h ~predictor:Config.Real in
  let rendered, mean, improvements =
    render_cycles
      ~title:"Figure 3: Conventional vs block-structured (real predictor)" rows
  in
  let find n = List.assoc_opt n improvements in
  let go_txt =
    match find "go" with
    | Some v when v < 1.0 ->
      Printf.sprintf "go is the weak case at %.1f%% (paper: the one regression, -1.5%%)." v
    | Some v -> Printf.sprintf "go gains %.1f%% here (paper saw a -1.5%% regression)." v
    | None -> ""
  in
  {
    id = "fig3";
    title = "Cycle comparison, real predictor";
    rendered;
    summary =
      Printf.sprintf
        "Measured mean improvement %.1f%% (paper: %.1f%%). %s" mean
        Expected.fig3_mean_improvement_pct go_txt;
  }

let fig4 h =
  let rows = cycle_comparison h ~predictor:Config.Perfect in
  let rendered, mean, _ =
    render_cycles
      ~title:"Figure 4: Conventional vs block-structured (perfect prediction)" rows
  in
  {
    id = "fig4";
    title = "Cycle comparison, perfect prediction";
    rendered;
    summary =
      Printf.sprintf
        "Measured mean improvement %.1f%% under perfect prediction (paper: %.1f%%); \
         the gap vs figure 3 shows fault mispredictions cost the block-structured \
         core more than branch mispredictions cost the conventional core."
        mean Expected.fig4_mean_improvement_pct;
  }

(* ----- Figure 5: average block sizes -------------------------------------- *)

let fig5 h =
  let rows = cycle_comparison h ~predictor:Config.Real in
  let t =
    Table.create ~title:"Figure 5: Average retired block sizes"
      ~headers:
        [
          ("Benchmark", Table.Left);
          ("Conv block size", Table.Right);
          ("BSA block size", Table.Right);
        ]
  in
  let accum_c = ref 0.0 and accum_b = ref 0.0 in
  List.iter
    (fun (name, (mc : Bisa_timing.Metrics.t), (mb : Bisa_timing.Metrics.t)) ->
      let c = Bisa_timing.Metrics.mean_block_size mc in
      let b = Bisa_timing.Metrics.mean_block_size mb in
      accum_c := !accum_c +. c;
      accum_b := !accum_b +. b;
      Table.add_row t [ name; Table.cell_float c; Table.cell_float b ])
    rows;
  let n = float_of_int (List.length rows) in
  let mean_c = !accum_c /. n and mean_b = !accum_b /. n in
  Table.add_rule t;
  Table.add_row t [ "mean"; Table.cell_float mean_c; Table.cell_float mean_b ];
  let plot =
    Textplot.grouped_bars ~title:"Figure 5" ~unit_label:"ops per retired block"
      ~groups:(List.map (fun (nm, _, _) -> nm) rows)
      ~series:
        [
          {
            Textplot.label = "Conventional ISA";
            values = List.map (fun (_, mc, _) -> Bisa_timing.Metrics.mean_block_size mc) rows;
          };
          {
            Textplot.label = "Block-Structured ISA";
            values = List.map (fun (_, _, mb) -> Bisa_timing.Metrics.mean_block_size mb) rows;
          };
        ]
      ()
  in
  {
    id = "fig5";
    title = "Average retired block sizes";
    rendered = Table.to_string t ^ "\n" ^ plot;
    summary =
      Printf.sprintf
        "Measured mean block sizes %.1f (conventional) vs %.1f (block-structured); \
         paper: %.1f vs %.1f. Enlargement raises fetch per cycle ~%.0f%%, yet most \
         of the 16-wide fetch bandwidth stays unused — calls and returns stop \
         merging, as in the paper."
        mean_c mean_b Expected.fig5_conv_mean_block Expected.fig5_block_mean_block
        (100.0 *. (mean_b -. mean_c) /. mean_c);
  }

(* ----- Figures 6/7: icache sensitivity ------------------------------------ *)

let icache_sweep h ~which =
  let base = Harness.base_config h in
  let benches = Harness.benchmarks h in
  let sweep = Harness.sweep_caches h in
  (* Grid: every benchmark x icache point (perfect baseline first). *)
  let caches = None :: List.map (fun (_, c) -> Some c) sweep in
  let grid = List.concat_map (fun w -> List.map (fun c -> (w, c)) caches) benches in
  let metrics =
    Pool.map_list (Harness.pool h)
      (fun ((w : Workloads.t), icache) ->
        let cfg = Config.with_icache icache base in
        match which with
        | `Conv -> Harness.run_conv h w cfg
        | `Block -> Harness.run_block h w cfg)
      grid
  in
  List.map2
    (fun (w : Workloads.t) ms ->
      match ms with
      | (perfect : Bisa_timing.Metrics.t) :: points ->
        ( w.name,
          List.map2
            (fun (label, _) (m : Bisa_timing.Metrics.t) ->
              ( label,
                float_of_int (m.cycles - perfect.cycles) /. float_of_int perfect.cycles ))
            sweep points )
      | [] -> assert false)
    benches
    (chunks (List.length caches) metrics)

let render_sweep ~title ~which h =
  let rows = icache_sweep h ~which in
  let labels = List.map fst (Harness.sweep_caches h) in
  let t =
    Table.create ~title
      ~headers:
        (("Benchmark", Table.Left)
        :: List.map (fun l -> ("+time @" ^ l, Table.Right)) labels)
  in
  List.iter
    (fun (name, points) ->
      Table.add_row t (name :: List.map (fun (_, v) -> Table.cell_float ~decimals:3 v) points))
    rows;
  let plot =
    Textplot.grouped_bars ~title ~unit_label:"relative execution-time increase"
      ~groups:(List.map fst rows)
      ~series:
        (List.map
           (fun label ->
             {
               Textplot.label;
               values = List.map (fun (_, points) -> List.assoc label points) rows;
             })
           labels)
      ()
  in
  (rows, Table.to_string t ^ "\n" ^ plot)

let worst_two rows =
  (* Benchmarks with the largest smallest-cache degradation. *)
  let by_first =
    List.map (fun (n, points) -> (n, snd (List.hd points))) rows
    |> List.sort (fun (_, a) (_, b) -> compare b a)
  in
  match by_first with
  | (a, _) :: (b, _) :: _ -> [ a; b ]
  | rest -> List.map fst rest

let fig6 h =
  let _rows, rendered =
    render_sweep
      ~title:"Figure 6: Conventional ISA, slowdown vs perfect icache" ~which:`Conv h
  in
  {
    id = "fig6";
    title = "Conventional ISA icache sensitivity";
    rendered;
    summary =
      "Conventional executables degrade modestly as the icache shrinks; the \
       big-footprint surrogates (gcc, go, vortex) degrade most, the small ones \
       (compress, li, ijpeg) stay nearly flat — the paper's figure-6 shape.";
  }

let fig7 h =
  let rows, rendered =
    render_sweep
      ~title:"Figure 7: Block-structured ISA, slowdown vs perfect icache" ~which:`Block h
  in
  let worst = worst_two rows in
  {
    id = "fig7";
    title = "Block-structured ISA icache sensitivity";
    rendered;
    summary =
      Printf.sprintf
        "Block-structured executables lose much more icache performance than \
         conventional ones (code duplication); worst here: %s (paper: gcc and go, \
         \"many small basic blocks and many unbiased branches\")."
        (String.concat ", " worst);
  }

let all h = [ table1 (); table2 h; fig3 h; fig4 h; fig5 h; fig6 h; fig7 h ]
