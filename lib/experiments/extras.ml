module Table = Bisa_base.Table
module Config = Bisa_timing.Config
module Workloads = Bisa_workloads.Workloads
module Cache = Bisa_uarch.Cache
module Pool = Bisa_base.Pool

let scaled_16k = { Cache.size_bytes = Cache.kb 16; assoc = 4; line_bytes = 32 }

let scientific ?(pool = Pool.sequential) () =
  let w = Workloads.scientific in
  let c = Workloads.compile w in
  let cfg = Config.with_icache (Some scaled_16k) Config.default in
  let mc, mb =
    match
      Pool.map_list pool
        (fun f -> f ())
        [
          (fun () -> Bisa_timing.Conv_pipeline.run cfg c.conv);
          (fun () -> Bisa_timing.Block_pipeline.run cfg c.block);
        ]
    with
    | [ mc; mb ] -> (mc, mb)
    | _ -> assert false
  in
  let imp = 100.0 *. float_of_int (mc.cycles - mb.cycles) /. float_of_int mc.cycles in
  let t =
    Table.create ~title:"Future work: scientific (FP) code"
      ~headers:
        [
          ("Core", Table.Left);
          ("Cycles", Table.Right);
          ("IPC", Table.Right);
          ("Mean block", Table.Right);
          ("Mispredicts", Table.Right);
        ]
  in
  Table.add_row t
    [
      "conventional";
      Table.cell_int mc.cycles;
      Table.cell_float (Bisa_timing.Metrics.ipc mc);
      Table.cell_float (Bisa_timing.Metrics.mean_block_size mc);
      Table.cell_int mc.mispredicts;
    ];
  Table.add_row t
    [
      "block-structured";
      Table.cell_int mb.cycles;
      Table.cell_float (Bisa_timing.Metrics.ipc mb);
      Table.cell_float (Bisa_timing.Metrics.mean_block_size mb);
      Table.cell_int mb.mispredicts;
    ];
  {
    Figures.id = "future_scientific";
    title = "Scientific-code future-work claim";
    rendered = Table.to_string t;
    summary =
      Printf.sprintf
        "Block-structured improvement on the FP surrogate: %.1f%%. Half the \
         paper's section-6 conjecture holds exactly — FP branches are so \
         predictable that fault squashes nearly vanish (mispredicts above). \
         The other half does not transfer: FP basic blocks are already large, \
         so one-basic-block-per-cycle fetch satisfies the achievable FP IPC \
         and enlargement has less to add than on SPECint. (The paper never \
         ran this experiment; this is what its proposal measures.)"
        imp;
  }

let trace_cache_rivalry ?(workloads = [ "m88ksim"; "perl"; "li"; "compress" ])
    ?(pool = Pool.sequential) () =
  let base = Config.with_icache (Some scaled_16k) Config.default in
  let with_tc =
    { base with trace_cache = Some Bisa_uarch.Trace_cache.default_config }
  in
  let t =
    Table.create
      ~title:"Rivalry: run-time (trace cache) vs compile-time (enlargement) block merging"
      ~headers:
        [
          ("Benchmark", Table.Left);
          ("Conv cycles", Table.Right);
          ("Conv+TC cycles", Table.Right);
          ("BSA cycles", Table.Right);
          ("TC hits", Table.Right);
          ("TC extra ops", Table.Right);
        ]
  in
  let rows =
    Pool.map_list pool
      (fun name ->
        let w = Workloads.find name in
        let c = Workloads.compile w in
        let mc = Bisa_timing.Conv_pipeline.run base c.conv in
        let mt = Bisa_timing.Conv_pipeline.run with_tc c.conv in
        let mb = Bisa_timing.Block_pipeline.run base c.block in
        (name, mc, mt, mb))
      workloads
  in
  let improvements =
    List.map
      (fun (name, (mc : Bisa_timing.Metrics.t), (mt : Bisa_timing.Metrics.t),
           (mb : Bisa_timing.Metrics.t)) ->
        Table.add_row t
          [
            name;
            Table.cell_int mc.cycles;
            Table.cell_int mt.cycles;
            Table.cell_int mb.cycles;
            Table.cell_int mt.tc_hits;
            Table.cell_int mt.tc_served_ops;
          ];
        ( name,
          100.0 *. float_of_int (mc.cycles - mt.cycles) /. float_of_int mc.cycles,
          100.0 *. float_of_int (mc.cycles - mb.cycles) /. float_of_int mc.cycles ))
      rows
  in
  let n = float_of_int (List.length improvements) in
  let mean_tc = List.fold_left (fun a (_, tci, _) -> a +. tci) 0.0 improvements /. n in
  let mean_bsa = List.fold_left (fun a (_, _, b) -> a +. b) 0.0 improvements /. n in
  {
    Figures.id = "trace_cache";
    title = "Trace cache vs block enlargement";
    rendered = Table.to_string t;
    summary =
      Printf.sprintf
        "Mean improvement over the plain conventional core: trace cache %.1f%%, \
         block enlargement %.1f%%. Both merge basic blocks into one fetch unit; \
         the trace cache does it at run time into a small dedicated cache, \
         enlargement at compile time into the whole icache (paper section 3); \
         the paper's section-6 remark that the two could compose remains open \
         here too."
        mean_tc mean_bsa;
  }

let predication_study ?(workloads = [ "go"; "gcc"; "compress" ]) ?(pool = Pool.sequential)
    () =
  let cfg = Config.with_icache (Some scaled_16k) Config.default in
  let t =
    Table.create
      ~title:"Section 6: predicated execution (if-conversion to selects)"
      ~headers:
        [
          ("Benchmark", Table.Left);
          ("Build", Table.Left);
          ("BSA cycles", Table.Right);
          ("Mispredicts", Table.Right);
          ("Fault squashes", Table.Right);
          ("Mean block", Table.Right);
        ]
  in
  (* Grid: every (workload, build) compiles and simulates independently. *)
  let grid =
    List.concat_map
      (fun name -> [ (name, "branches (paper)", false); (name, "if-converted", true) ])
      workloads
  in
  let runs =
    Pool.map_list pool
      (fun (name, label, ifconvert) ->
        let w = Workloads.find name in
        let src = Workloads.source w in
        let c =
          Bisa_compiler.Compiler.compile ~ifconvert ~library_funcs:w.library_funcs src
        in
        (name, label, Bisa_timing.Block_pipeline.run cfg c.block))
      grid
  in
  let deltas =
    List.map
      (function
        | [
            (name, bl, (base : Bisa_timing.Metrics.t));
            (_, pl, (pred : Bisa_timing.Metrics.t));
          ] ->
          let row label (m : Bisa_timing.Metrics.t) =
            Table.add_row t
              [
                name;
                label;
                Table.cell_int m.cycles;
                Table.cell_int m.mispredicts;
                Table.cell_int m.fault_squash_redirects;
                Table.cell_float (Bisa_timing.Metrics.mean_block_size m);
              ]
          in
          row bl base;
          row pl pred;
          Table.add_rule t;
          (base.cycles, pred.cycles, base.mispredicts, pred.mispredicts)
        | _ -> assert false)
      (Figures.chunks 2 runs)
  in
  let n = float_of_int (List.length deltas) in
  let mean f = List.fold_left (fun a d -> a +. f d) 0.0 deltas /. n in
  {
    Figures.id = "predication";
    title = "Predicated execution (paper section 6)";
    rendered = Table.to_string t;
    summary =
      Printf.sprintf
        "If-conversion removes %.0f%% of the block core's mispredict events and \
         changes cycles by %.1f%% on the branchy surrogates — the paper's \
         conjecture that eliminating hard-to-predict short branches helps the \
         block-structured core most, at the cost of issuing both arms."
        (mean (fun (_, _, mb, mp) ->
             100.0 *. float_of_int (mb - mp) /. float_of_int (max 1 mb)))
        (mean (fun (cb, cp, _, _) ->
             100.0 *. float_of_int (cb - cp) /. float_of_int cb));
  }

let inlining_study ?(workloads = [ "li"; "gcc"; "vortex" ]) ?(pool = Pool.sequential) () =
  let cfg = Config.with_icache (Some scaled_16k) Config.default in
  let t =
    Table.create ~title:"Section 6: inlining lifts the call/return merge barrier"
      ~headers:
        [
          ("Benchmark", Table.Left);
          ("Build", Table.Left);
          ("BSA cycles", Table.Right);
          ("Mean block", Table.Right);
          ("Code bytes", Table.Right);
        ]
  in
  let grid =
    List.concat_map
      (fun name -> [ (name, "no inlining (paper)", false); (name, "inlined", true) ])
      workloads
  in
  let runs =
    Pool.map_list pool
      (fun (name, label, inline) ->
        let w = Workloads.find name in
        let src = Workloads.source w in
        let c =
          Bisa_compiler.Compiler.compile ~inline ~library_funcs:w.library_funcs src
        in
        let m = Bisa_timing.Block_pipeline.run cfg c.block in
        (name, label, m, c.block.code_bytes))
      grid
  in
  let deltas =
    List.map
      (fun (name, label, (m : Bisa_timing.Metrics.t), code_bytes) ->
        Table.add_row t
          [
            name;
            label;
            Table.cell_int m.cycles;
            Table.cell_float (Bisa_timing.Metrics.mean_block_size m);
            Table.cell_int code_bytes;
          ];
        if label = "inlined" then Table.add_rule t;
        (name, label, m.cycles, Bisa_timing.Metrics.mean_block_size m))
      runs
    |> Figures.chunks 2
    |> List.map (function
         | [ (_, _, base_cycles, base_size); (_, _, in_cycles, in_size) ] ->
           (base_cycles, in_cycles, base_size, in_size)
         | _ -> assert false)
  in
  let n = float_of_int (List.length deltas) in
  let mean f = List.fold_left (fun a d -> a +. f d) 0.0 deltas /. n in
  {
    Figures.id = "inlining";
    title = "Inlining (paper section 6)";
    rendered = Table.to_string t;
    summary =
      Printf.sprintf
        "Inlining grows the mean retired block from %.1f to %.1f ops and changes \
         block-core cycles by %.1f%% on the call-heavy surrogates — the paper's \
         conjecture that removing call/return boundaries lets enlargement merge \
         further."
        (mean (fun (_, _, b, _) -> b))
        (mean (fun (_, _, _, i) -> i))
        (mean (fun (b, i, _, _) ->
             100.0 *. float_of_int (b - i) /. float_of_int b));
  }

let prediction_parity h =
  let cfg = Harness.base_config h in
  let t =
    Table.create ~title:"Prediction parity (paper section 5 claim)"
      ~headers:
        [
          ("Benchmark", Table.Left);
          ("Conv mispredicts/kop", Table.Right);
          ("BSA mispredicts/kop", Table.Right);
          ("BSA fault squashes", Table.Right);
        ]
  in
  let rows =
    Pool.map_list (Harness.pool h)
      (fun (w : Workloads.t) -> (w.name, Harness.run_conv h w cfg, Harness.run_block h w cfg))
      (Harness.benchmarks h)
  in
  List.iter
    (fun (name, (mc : Bisa_timing.Metrics.t), (mb : Bisa_timing.Metrics.t)) ->
      Table.add_row t
        [
          name;
          Table.cell_float (Bisa_timing.Metrics.mispredict_rate_per_kop mc);
          Table.cell_float (Bisa_timing.Metrics.mispredict_rate_per_kop mb);
          Table.cell_int mb.fault_squash_redirects;
        ])
    rows;
  {
    Figures.id = "prediction_parity";
    title = "Branch-misprediction parity";
    rendered = Table.to_string t;
    summary =
      "The paper reports both executables suffer about the same number of \
       mispredictions, with the block-structured ones costing more each \
       (whole-block squash); the per-kop rates above quantify that for the \
       surrogates.";
  }
