(** Experiments beyond the paper's evaluation section.

    [scientific] tests the paper's future-work claim (section 6): on
    FP-heavy scientific code — larger basic blocks, more predictable
    branches — the block-structured gain should exceed the SPECint
    result. *)

val scientific : ?pool:Bisa_base.Pool.t -> unit -> Figures.report

val prediction_parity : Harness.t -> Figures.report
(** The paper's side claim that both executables "incur about the same
    number of branch mispredictions": mispredicts per 1000 retired
    operations for both cores. *)

val trace_cache_rivalry :
  ?workloads:string list -> ?pool:Bisa_base.Pool.t -> unit -> Figures.report
(** The paper's section-3 rival: a conventional core with a Rotenberg-style
    trace cache vs plain conventional vs block-structured — the run-time
    and compile-time approaches to the same fetch problem, side by side. *)

val predication_study :
  ?workloads:string list -> ?pool:Bisa_base.Pool.t -> unit -> Figures.report
(** Section 6's first proposal: if-conversion turns small branch hammocks
    into select operations, eliminating hard-to-predict branches and
    growing basic blocks for enlargement to merge further. *)

val inlining_study :
  ?workloads:string list -> ?pool:Bisa_base.Pool.t -> unit -> Figures.report
(** Section 6's other proposal: inlining removes the call/return
    boundaries that termination rule 3 stops at, letting enlargement build
    bigger blocks.  Compares the block core with and without
    {!Bisa_opt.Inline}. *)
