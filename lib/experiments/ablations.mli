(** Ablation studies for the design choices DESIGN.md calls out.

    [enlargement_rules] re-compiles a subset of workloads under variant
    enlargement configurations (no enlargement; one fault per block; a
    narrower 8-op issue limit; merging across loop back edges; enlarging
    library code) and reports cycles, block sizes and code growth — the
    compiler-side knobs of paper section 4.2.

    [history_policy] compares the paper's variable-length history update
    (modification 3) against naively shifting three bits per block,
    quantifying why the minimum-bits rule exists. *)

type row = { label : string; values : (string * float) list }

type study = { id : string; title : string; rows : row list; rendered : string }

val enlargement_rules :
  ?workloads:string list -> ?pool:Bisa_base.Pool.t -> unit -> study

val history_policy :
  ?workloads:string list -> ?pool:Bisa_base.Pool.t -> unit -> study

val all : ?pool:Bisa_base.Pool.t -> unit -> study list
