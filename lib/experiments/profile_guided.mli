(** Profile-guided block enlargement — the paper's section-6 proposal:
    "the amount of code duplication caused by the block enlargement
    optimization can be reduced if this optimization does not combine
    blocks that contain unbiased branches with their successors, thereby
    reducing the icache miss rate in exchange for smaller enlarged atomic
    blocks."

    The flow: compile once to machine IR; link an {e unenlarged}
    block-structured executable; run it functionally, attributing every
    trap outcome back to its protoblock (via {!Bisa_backend.Enlarge.t}'s
    [start_proto] map); re-link with the bias oracle so unbiased traps
    stay traps. *)

type profile = (string * int, int * int) Hashtbl.t
(** (function, protoblock) -> (times taken, total executions). *)

val collect :
  Bisa_isa.Block_prog.t -> Bisa_backend.Enlarge.t list -> ?budget:int -> unit -> profile
(** Functional profiling run of an (unenlarged) block executable. *)

val bias_of : profile -> string -> int -> float option
(** The oracle {!Bisa_backend.Linker.link_block} expects; [None] below 16
    observations. *)

val compile : ?scale:int -> Bisa_workloads.Workloads.t -> Bisa_compiler.Compiler.compiled
(** The full profile-guided build of a workload surrogate. *)

val study :
  ?workloads:string list -> ?pool:Bisa_base.Pool.t -> unit -> Ablations.study
(** Default vs profile-guided enlargement on the paper's two worst icache
    offenders (gcc, go): code size, icache misses at the small cache
    points, fault squashes, and cycles. *)
