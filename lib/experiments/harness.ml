module Workloads = Bisa_workloads.Workloads
module Config = Bisa_timing.Config
module Cache = Bisa_uarch.Cache
module Pool = Bisa_base.Pool

let verbose = ref false

(* One mutex for all progress lines so interleaved domain logs stay
   line-atomic. *)
let log_lock = Mutex.create ()

let log fmt =
  Printf.ksprintf
    (fun s ->
      if !verbose then begin
        Mutex.lock log_lock;
        Printf.eprintf "%s\n%!" s;
        Mutex.unlock log_lock
      end)
    fmt

(* Split [xs] into consecutive groups of [n] (the grid results of one
   benchmark); the length must divide evenly. *)
let chunks n xs =
  if n <= 0 then invalid_arg "Harness.chunks: group size must be positive";
  let rec take k acc = function
    | rest when k = 0 -> (List.rev acc, rest)
    | x :: rest -> take (k - 1) (x :: acc) rest
    | [] -> invalid_arg "Harness.chunks: ragged grid"
  in
  let rec go = function
    | [] -> []
    | xs ->
      let group, rest = take n [] xs in
      group :: go rest
  in
  go xs

type cache_key = (int * int * int) option * Config.predictor

(* A memo cell: Busy while the first requester computes; later requesters
   block on the cell's condition instead of recomputing.  An exception
   poisons the cell for every waiter. *)
type 'a cell_state = Busy | Ready of 'a | Poisoned of exn * Printexc.raw_backtrace
type 'a cell = { cm : Mutex.t; cc : Condition.t; mutable state : 'a cell_state }

type t = {
  scale : int option;
  campaign : Campaign.t option;
  base : Config.t;
  sweep : (string * Cache.config) list;
  pool : Pool.t;
  (* Which functional-executor backend every harness-routed timing run
     uses.  Not part of the run-cache key: the backends are
     differentially tested equivalent, so metrics do not depend on it. *)
  exec : Bisa_sim.Compile.backend;
  lock : Mutex.t;  (* guards all tables (not the cells' contents) *)
  compiled_cache : (string, Bisa_compiler.Compiler.compiled cell) Hashtbl.t;
  run_cache : (string * string * cache_key, Bisa_timing.Metrics.t cell) Hashtbl.t;
  (* Predecoded op-template tables: one per program, shared by every grid
     configuration and worker domain that simulates it. *)
  pre_conv_cache : (string, Bisa_timing.Predecode.t cell) Hashtbl.t;
  pre_block_cache : (string, Bisa_timing.Predecode.blocks cell) Hashtbl.t;
  (* Threaded-code forms (Compile.{Conv,Block}.code): like the predecode
     tables, one per program, shared across configurations and domains. *)
  code_conv_cache : (string, Bisa_timing.Pipeline.Conv.code cell) Hashtbl.t;
  code_block_cache : (string, Bisa_timing.Pipeline.Block.code cell) Hashtbl.t;
  (* Artifact bundles (program witness + tables + code + content hash):
     the form every timing run consumes.  Memoized so the content hash —
     an O(program) encode — is computed once, not once per grid cell. *)
  art_conv_cache : (string, Bisa_timing.Pipeline.Conv.artifact cell) Hashtbl.t;
  art_block_cache : (string, Bisa_timing.Pipeline.Block.artifact cell) Hashtbl.t;
  mutable on_compute : string -> unit;
}

let scaled_default = { Cache.size_bytes = Cache.kb 16; assoc = 4; line_bytes = 32 }

let create ?scale ?(paper_caches = false) ?(pool = Pool.sequential)
    ?(exec = Bisa_sim.Compile.Interp) ?campaign () =
  let default_icache, sweep =
    if paper_caches then
      ( Cache.config_64k,
        [ ("16KB", Cache.config_16k); ("32KB", Cache.config_32k); ("64KB", Cache.config_64k) ] )
    else
      ( scaled_default,
        [
          ("4KB", { Cache.size_bytes = Cache.kb 4; assoc = 4; line_bytes = 32 });
          ("8KB", { Cache.size_bytes = Cache.kb 8; assoc = 4; line_bytes = 32 });
          ("16KB", scaled_default);
        ] )
  in
  {
    scale;
    campaign;
    base = Config.with_icache (Some default_icache) Config.default;
    sweep;
    pool;
    exec;
    lock = Mutex.create ();
    compiled_cache = Hashtbl.create 16;
    run_cache = Hashtbl.create 64;
    pre_conv_cache = Hashtbl.create 16;
    pre_block_cache = Hashtbl.create 16;
    code_conv_cache = Hashtbl.create 16;
    code_block_cache = Hashtbl.create 16;
    art_conv_cache = Hashtbl.create 16;
    art_block_cache = Hashtbl.create 16;
    on_compute = ignore;
  }

let base_config t = t.base
let exec_backend t = t.exec
let campaign t = t.campaign
let sweep_caches t = t.sweep
let benchmarks _ = Workloads.all
let pool t = t.pool
let set_compute_hook t hook = t.on_compute <- hook

let wait_cell cell =
  Mutex.lock cell.cm;
  let rec go () =
    match cell.state with
    | Busy ->
      Condition.wait cell.cc cell.cm;
      go ()
    | Ready v ->
      Mutex.unlock cell.cm;
      v
    | Poisoned (e, bt) ->
      Mutex.unlock cell.cm;
      Printexc.raise_with_backtrace e bt
  in
  go ()

let fill_cell cell state =
  Mutex.lock cell.cm;
  cell.state <- state;
  Condition.broadcast cell.cc;
  Mutex.unlock cell.cm

(* Find-or-compute with exactly-once semantics: the requester that
   installs the Busy cell computes outside [t.lock]; everyone else waits
   on the cell.  [t.on_compute label] therefore fires exactly once per
   distinct key. *)
let memoize t table key ~label ~compute =
  Mutex.lock t.lock;
  match Hashtbl.find_opt table key with
  | Some cell ->
    Mutex.unlock t.lock;
    wait_cell cell
  | None ->
    let cell = { cm = Mutex.create (); cc = Condition.create (); state = Busy } in
    Hashtbl.add table key cell;
    let hook = t.on_compute in
    Mutex.unlock t.lock;
    hook label;
    (match compute () with
    | v ->
      fill_cell cell (Ready v);
      v
    | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      fill_cell cell (Poisoned (e, bt));
      Printexc.raise_with_backtrace e bt)

let compiled t (w : Workloads.t) =
  memoize t t.compiled_cache w.name ~label:("compile:" ^ w.name) ~compute:(fun () ->
      log "[compile] %s" w.name;
      match t.scale with
      | Some scale -> Workloads.compile ~scale w
      | None -> Workloads.compile w)

let predecoded_conv t (w : Workloads.t) =
  memoize t t.pre_conv_cache w.name
    ~label:("predecode:" ^ w.name ^ "/" ^ Bisa_timing.Pipeline.Conv.isa)
    ~compute:(fun () -> Bisa_timing.Pipeline.Conv.predecode (compiled t w).conv)

let predecoded_block t (w : Workloads.t) =
  memoize t t.pre_block_cache w.name
    ~label:("predecode:" ^ w.name ^ "/" ^ Bisa_timing.Pipeline.Block.isa)
    ~compute:(fun () -> Bisa_timing.Pipeline.Block.predecode (compiled t w).block)

(* Threaded-code compilation piggybacks on the predecode trust boundary:
   [predecoded_*] has already verified the very same program, so the
   trusted compile is sound and the verifier runs once, not twice. *)
let code_conv t (w : Workloads.t) =
  memoize t t.code_conv_cache w.name
    ~label:("compile-exec:" ^ w.name ^ "/" ^ Bisa_timing.Pipeline.Conv.isa)
    ~compute:(fun () ->
      ignore (predecoded_conv t w);
      Bisa_timing.Pipeline.Conv.compile_trusted (compiled t w).conv)

let code_block t (w : Workloads.t) =
  memoize t t.code_block_cache w.name
    ~label:("compile-exec:" ^ w.name ^ "/" ^ Bisa_timing.Pipeline.Block.isa)
    ~compute:(fun () ->
      ignore (predecoded_block t w);
      Bisa_timing.Pipeline.Block.compile_trusted (compiled t w).block)

(* The artifact memo bundles the predecode and threaded-code memos (code
   only under ~exec:Compiled) with the program's content hash; trust was
   discharged by the predecode memo.  This is the single value every
   timing run, campaign cell and checkpoint consumes. *)
let artifact_conv t (w : Workloads.t) =
  memoize t t.art_conv_cache w.name
    ~label:("artifact:" ^ w.name ^ "/" ^ Bisa_timing.Pipeline.Conv.isa)
    ~compute:(fun () ->
      let tables = predecoded_conv t w in
      let code =
        match t.exec with
        | Bisa_sim.Compile.Interp -> None
        | Bisa_sim.Compile.Compiled -> Some (code_conv t w)
      in
      Bisa_timing.Pipeline.Conv.bundle ?code ~tables (compiled t w).conv)

let artifact_block t (w : Workloads.t) =
  memoize t t.art_block_cache w.name
    ~label:("artifact:" ^ w.name ^ "/" ^ Bisa_timing.Pipeline.Block.isa)
    ~compute:(fun () ->
      let tables = predecoded_block t w in
      let code =
        match t.exec with
        | Bisa_sim.Compile.Interp -> None
        | Bisa_sim.Compile.Compiled -> Some (code_block t w)
      in
      Bisa_timing.Pipeline.Block.bundle ?code ~tables (compiled t w).block)

let key_of (cfg : Config.t) : cache_key =
  ( Option.map (fun (c : Cache.config) -> (c.size_bytes, c.assoc, c.line_bytes)) cfg.icache,
    cfg.predictor )

let run t (w : Workloads.t) (cfg : Config.t) ~isa ~f =
  let key = (w.name, isa, key_of cfg) in
  memoize t t.run_cache key
    ~label:(Printf.sprintf "run:%s/%s" w.name isa)
    ~compute:(fun () ->
      log "[run] %s/%s icache=%s pred=%s" w.name isa
        (match cfg.icache with
        | Some c -> string_of_int (c.size_bytes / 1024) ^ "KB"
        | None -> "perfect")
        (match cfg.predictor with Config.Real -> "real" | Config.Perfect -> "perfect");
      f (compiled t w))

(* Both ISAs run through the one [Pipeline.S] contract; only the artifact
   memo differs per instantiation.  With a campaign attached, every cell
   goes through its crash-safe path: finished cells are read back from
   their manifests, interrupted ones resume from their snapshots. *)
let run_pipe (type p a) t
    (module P : Bisa_timing.Pipeline.S with type prog = p and type artifact = a)
    ~(artifact : Workloads.t -> a) (w : Workloads.t) cfg =
  run t w cfg ~isa:P.isa ~f:(fun _cm ->
      let art = artifact w in
      match t.campaign with
      | Some camp -> Campaign.run_cell camp (module P) ~bench:w.name cfg art
      | None -> fst (P.run_artifact cfg art))

let run_conv t w cfg =
  run_pipe t (module Bisa_timing.Pipeline.Conv) ~artifact:(artifact_conv t) w cfg

let run_block t w cfg =
  run_pipe t (module Bisa_timing.Pipeline.Block) ~artifact:(artifact_block t) w cfg
